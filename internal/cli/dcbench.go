package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"doublechecker/internal/eval"
)

// DCBench runs the dcbench tool: regenerate the paper's evaluation. It
// returns a process exit code.
func DCBench(args []string, stdout, stderr io.Writer) int {
	return DCBenchContext(context.Background(), args, stdout, stderr)
}

// DCBenchContext is DCBench under a context: cancellation stops the suite
// at the next experiment boundary (individual experiments run to
// completion, so partially computed tables are never printed).
func DCBenchContext(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all",
			"one of: table2, fig7, table3, refine-overhead, arrays, ablations, filter-precision, pcd-only, telemetry, parallelpcd, servecache, obsoverhead, crosscheck, icdperf, all")
		scale      = fs.Float64("scale", 0.5, "workload scale factor")
		trials     = fs.Int("trials", 5, "performance trials per configuration")
		stable     = fs.Int("stable", 4, "consecutive quiet trials ending refinement (paper: 10)")
		firstRuns  = fs.Int("first-runs", 10, "first runs feeding multi-run mode's second run")
		benchmarks = fs.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		csvDir     = fs.String("csv", "", "also write machine-readable CSVs into this directory")
		budget     = fs.Int64("budget-kb", 0, "model a heap limit: flag Figure 7 rows whose live analysis bytes exceed this (KiB)")
		telOut     = fs.String("telemetry-out", "BENCH_telemetry.json", "output path for the telemetry experiment's JSON dump")
		parOut     = fs.String("parallelpcd-out", "BENCH_parallelpcd.json", "output path for the parallelpcd experiment's JSON dump (determinism section also written alongside as .det.json)")
		cacheOut   = fs.String("servecache-out", "BENCH_servecache.json", "output path for the servecache experiment's JSON dump")
		obsOut     = fs.String("obs-out", "BENCH_obs.json", "output path for the obsoverhead experiment's JSON dump")
		xchkOut    = fs.String("crosscheck-out", "BENCH_crosscheck.json", "output path for the crosscheck experiment's JSON dump (byte-reproducible at a fixed budget)")
		xchkBudget = fs.Int("crosscheck-budget", 0, "crosscheck sweep triple budget (0: default 120)")
		perfOut    = fs.String("icdperf-out", "BENCH_icdperf.json", "output path for the icdperf experiment's JSON dump (byte-reproducible on one toolchain)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opts := eval.Options{
		Scale:            *scale,
		PerfTrials:       *trials,
		RefineStable:     *stable,
		FirstRuns:        *firstRuns,
		MemoryBudget:     *budget * 1024,
		CrosscheckBudget: *xchkBudget,
	}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "dcbench:", err)
			return 1
		}
	}
	if code := runExperiments(ctx, *experiment, *csvDir, *telOut, *parOut, *cacheOut, *obsOut, *xchkOut, *perfOut, eval.NewRunner(opts), stdout, stderr); code != 0 {
		return code
	}
	return 0
}

// runExperiments dispatches the experiment set; split out for testing.
func runExperiments(ctx context.Context, experiment, csvDir, telOut, parOut, cacheOut, obsOut, xchkOut, perfOut string, runner *eval.Runner, stdout, stderr io.Writer) int {
	writeCSV := func(name, content string) bool {
		if csvDir == "" {
			return true
		}
		path := filepath.Join(csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(stderr, "dcbench:", err)
			return false
		}
		fmt.Fprintf(stdout, "[wrote %s]\n", path)
		return true
	}
	run := func(name string, f func() (string, error)) bool {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(stderr, "dcbench: canceled before %s: %v\n", name, err)
			return false
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(stderr, "dcbench: %s: %v\n", name, err)
			return false
		}
		fmt.Fprintln(stdout, out)
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return true
	}

	all := experiment == "all"
	ran := false
	ok := true
	if ok && (all || experiment == "table2") {
		ok = run("table2", func() (string, error) {
			d, err := runner.Table2()
			if err != nil {
				return "", err
			}
			if !writeCSV("table2.csv", d.CSVTable2()) {
				return "", fmt.Errorf("csv write failed")
			}
			return d.RenderTable2(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "fig7") {
		ok = run("fig7", func() (string, error) {
			d, err := runner.Figure7()
			if err != nil {
				return "", err
			}
			if !writeCSV("fig7.csv", d.CSVFigure7()) {
				return "", fmt.Errorf("csv write failed")
			}
			return d.RenderFigure7(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "table3") {
		ok = run("table3", func() (string, error) {
			d, err := runner.Table3()
			if err != nil {
				return "", err
			}
			if !writeCSV("table3.csv", d.CSVTable3()) {
				return "", fmt.Errorf("csv write failed")
			}
			return d.RenderTable3(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "refine-overhead") {
		ok = run("refine-overhead", func() (string, error) {
			d, err := runner.RefinementStages()
			if err != nil {
				return "", err
			}
			return d.RenderRefineStages(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "arrays") {
		ok = run("arrays", func() (string, error) {
			d, err := runner.Arrays()
			if err != nil {
				return "", err
			}
			return d.RenderArrays(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "ablations") {
		ok = run("ablations", func() (string, error) {
			d, err := runner.Ablations()
			if err != nil {
				return "", err
			}
			if !writeCSV("ablations.csv", d.CSVAblations()) {
				return "", fmt.Errorf("csv write failed")
			}
			return d.RenderAblations(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "filter-precision") {
		ok = run("filter-precision", func() (string, error) {
			d, err := runner.FilterPrecision()
			if err != nil {
				return "", err
			}
			return d.RenderFilterPrecision(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "pcd-only") {
		ok = run("pcd-only", func() (string, error) {
			d, err := runner.PCDOnly()
			if err != nil {
				return "", err
			}
			return d.RenderPCDOnly(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "telemetry") {
		ok = run("telemetry", func() (string, error) {
			d, err := runner.Telemetry()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(telOut, d.JSON(), 0o644); err != nil {
				return "", err
			}
			fmt.Fprintf(stdout, "[wrote %s]\n", telOut)
			return d.RenderTelemetry(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "parallelpcd") {
		ok = run("parallelpcd", func() (string, error) {
			d, err := runner.ParallelPCD()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(parOut, d.JSON(), 0o644); err != nil {
				return "", err
			}
			detPath := strings.TrimSuffix(parOut, ".json") + ".det.json"
			if err := os.WriteFile(detPath, d.DetJSON(), 0o644); err != nil {
				return "", err
			}
			fmt.Fprintf(stdout, "[wrote %s and %s]\n", parOut, detPath)
			return d.RenderParallelPCD(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "servecache") {
		ok = run("servecache", func() (string, error) {
			d, err := runner.ServeCache()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(cacheOut, d.JSON(), 0o644); err != nil {
				return "", err
			}
			fmt.Fprintf(stdout, "[wrote %s]\n", cacheOut)
			return d.RenderServeCache(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "obsoverhead") {
		ok = run("obsoverhead", func() (string, error) {
			d, err := runner.ObsOverhead()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(obsOut, d.JSON(), 0o644); err != nil {
				return "", err
			}
			fmt.Fprintf(stdout, "[wrote %s]\n", obsOut)
			return d.RenderObsOverhead(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "crosscheck") {
		ok = run("crosscheck", func() (string, error) {
			d, err := runner.Crosscheck()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(xchkOut, d.JSON(), 0o644); err != nil {
				return "", err
			}
			fmt.Fprintf(stdout, "[wrote %s]\n", xchkOut)
			if !d.OK() {
				return d.RenderCrosscheck(), fmt.Errorf("oracle failure (see %s)", xchkOut)
			}
			return d.RenderCrosscheck(), nil
		})
		ran = true
	}
	if ok && (all || experiment == "icdperf") {
		ok = run("icdperf", func() (string, error) {
			d, err := runner.ICDPerf()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(perfOut, d.JSON(), 0o644); err != nil {
				return "", err
			}
			fmt.Fprintf(stdout, "[wrote %s]\n", perfOut)
			if !d.OK() {
				return d.RenderICDPerf(), fmt.Errorf("acceptance bar missed (see %s)", perfOut)
			}
			return d.RenderICDPerf(), nil
		})
		ran = true
	}
	if !ok {
		return 1
	}
	if !ran {
		fmt.Fprintf(stderr, "dcbench: unknown experiment %q\n", experiment)
		return 2
	}
	return 0
}
