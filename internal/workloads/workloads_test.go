package workloads

import (
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"eclipse6", "hsqldb6", "lusearch6", "xalan6",
		"avrora9", "jython9", "luindex9", "lusearch9", "pmd9", "sunflow9", "xalan9",
		"elevator", "hedc", "philo", "sor", "tsp",
		"moldyn", "montecarlo", "raytracer",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	seen := map[string]bool{}
	for _, n := range got {
		seen[n] = true
	}
	for _, n := range want {
		if !seen[n] {
			t.Errorf("missing benchmark %q", n)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

// specFor builds the paper-style initial spec for a Built.
func specFor(t *testing.T, built *Built) *spec.Spec {
	t.Helper()
	s := spec.Initial(built.Prog)
	if err := s.ExcludeByName(built.InitialExclusions...); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAllBenchmarksRunUnderEveryScheduler executes every benchmark
// uninstrumented under several seeds: no deadlocks, no runtime errors, and
// deterministic per seed.
func TestAllBenchmarksRunUnderEverySeed(t *testing.T) {
	for _, name := range All() {
		built, err := Build(name, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if err := built.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for seed := int64(0); seed < 6; seed++ {
			sched := vm.NewSticky(seed, built.Stickiness)
			st, err := vm.NewExec(built.Prog, vm.Config{Sched: sched}).Run()
			if err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
				break
			}
			if st.TotalAccesses() == 0 {
				t.Errorf("%s: no accesses", name)
			}
		}
	}
}

// TestBenchmarksRunUnderDoubleChecker attaches the full single-run checker
// to every benchmark with its initial specification.
func TestBenchmarksRunUnderDoubleChecker(t *testing.T) {
	for _, name := range All() {
		built, err := Build(name, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		s := specFor(t, built)
		r, err := core.Run(built.Prog, core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(1, built.Stickiness),
			Atomic:   s.Atomic,
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if r.VMStats.RegularTx == 0 {
			t.Errorf("%s: no regular transactions under initial spec", name)
		}
	}
}

// TestRacyBenchmarksProduceViolations: every benchmark with injected races
// must produce at least one violation across a handful of seeds, and the
// blamed methods must be among the injected ones or other spec methods —
// crucially, benchmarks WITHOUT injected races must stay clean.
func TestRacyBenchmarksProduceViolations(t *testing.T) {
	clean := map[string]bool{
		"jython9": true, "luindex9": true, "pmd9": true,
		"philo": true, "sor": true, "moldyn": true, "raytracer": true,
	}
	for _, name := range All() {
		built, err := Build(name, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		s := specFor(t, built)
		total := 0
		for seed := int64(0); seed < 8; seed++ {
			r, err := core.Run(built.Prog, core.Config{
				Analysis: core.DCSingle,
				Sched:    vm.NewSticky(seed, built.Stickiness),
				Atomic:   s.Atomic,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			total += len(r.BlamedMethods)
		}
		if clean[name] && total > 0 {
			t.Errorf("%s: expected no violations, got %d blamed across seeds", name, total)
		}
		if !clean[name] && len(built.RacyMethods) > 0 && total == 0 {
			t.Errorf("%s: injected races never detected in 8 seeds", name)
		}
	}
}

// TestScaleControlsSize: scale must grow dynamic counts.
func TestScaleControlsSize(t *testing.T) {
	small, _ := Build("avrora9", 0.2)
	large, _ := Build("avrora9", 1.0)
	run := func(b *Built) uint64 {
		st, err := vm.NewExec(b.Prog, vm.Config{Sched: vm.NewSticky(1, b.Stickiness)}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.TotalAccesses()
	}
	if run(large) < 2*run(small) {
		t.Error("scale=1.0 should be much larger than scale=0.2")
	}
}

// TestDeterministicStructure: building twice yields identical programs.
func TestDeterministicStructure(t *testing.T) {
	for _, name := range All() {
		a, _ := Build(name, 0.5)
		b, _ := Build(name, 0.5)
		if len(a.Prog.Methods) != len(b.Prog.Methods) || a.Prog.NumObjects != b.Prog.NumObjects {
			t.Errorf("%s: nondeterministic structure", name)
			continue
		}
		for i := range a.Prog.Methods {
			am, bm := a.Prog.Methods[i], b.Prog.Methods[i]
			if am.Name != bm.Name || len(am.Body) != len(bm.Body) {
				t.Errorf("%s: method %d differs", name, i)
			}
		}
	}
}

// TestTable3Shapes: spot-check the structural ratios that Table 3 reports.
func TestTable3Shapes(t *testing.T) {
	run := func(name string) (*core.Result, *Built) {
		built, err := Build(name, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		s := specFor(t, built)
		r, err := core.Run(built.Prog, core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(3, built.Stickiness),
			Atomic:   s.Atomic,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r, built
	}

	// tsp: non-transactional accesses dwarf transactional ones.
	if r, _ := run("tsp"); r.ICD.UnaryAccesses < 4*r.ICD.RegularAccesses {
		t.Errorf("tsp: unary %d vs regular %d — unary should dominate",
			r.ICD.UnaryAccesses, r.ICD.RegularAccesses)
	}
	// jython9: nearly everything inside a handful of regular transactions.
	if r, _ := run("jython9"); r.ICD.RegularTx > 16 || r.ICD.RegularAccesses < 100 {
		t.Errorf("jython9: tx=%d regAccesses=%d — want few, giant transactions",
			r.ICD.RegularTx, r.ICD.RegularAccesses)
	}
	// jython9 and luindex9: no cross-thread structure.
	for _, name := range []string{"jython9", "luindex9", "pmd9"} {
		if r, _ := run(name); r.ICD.SCCs != 0 {
			t.Errorf("%s: expected 0 SCCs, got %d", name, r.ICD.SCCs)
		}
	}
	// xalan6: SCC-heavy (the pathology).
	rXalan, _ := run("xalan6")
	if rXalan.ICD.SCCs < 20 {
		t.Errorf("xalan6: expected many SCCs, got %d", rXalan.ICD.SCCs)
	}
	// montecarlo: contended enough for SCCs without many violations.
	rMC, _ := run("montecarlo")
	if rMC.ICD.SCCs == 0 {
		t.Error("montecarlo: expected imprecise SCCs from the result-vector lock")
	}
	// avrora9: many small transactions.
	rAvrora, _ := run("avrora9")
	if rAvrora.ICD.RegularTx < 200 {
		t.Errorf("avrora9: regular tx = %d, want many small ones", rAvrora.ICD.RegularTx)
	}
	// raytracer: read-shared scene means most accesses are fast-path reads.
	// (OctetStats not surfaced in Result; assert via edges being tiny
	// relative to accesses.)
	rRay, _ := run("raytracer")
	if rRay.ICD.IDGEdges*50 > rRay.ICD.RegularAccesses+rRay.ICD.UnaryAccesses {
		t.Errorf("raytracer: edges %d too dense for %d accesses",
			rRay.ICD.IDGEdges, rRay.ICD.RegularAccesses+rRay.ICD.UnaryAccesses)
	}
}

// TestArrayHeavyBenchmarksHaveArrays: the §5.4 experiment needs array
// accesses in at least a few benchmarks.
func TestArrayHeavyBenchmarksHaveArrays(t *testing.T) {
	withArrays := 0
	for _, name := range All() {
		built, _ := Build(name, 0.3)
		st, err := vm.NewExec(built.Prog, vm.Config{Sched: vm.NewSticky(1, built.Stickiness)}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.ArrayAccesses > 0 {
			withArrays++
		}
	}
	if withArrays < 3 {
		t.Errorf("only %d benchmarks touch arrays", withArrays)
	}
}

func TestRandomGeneratorDeterministic(t *testing.T) {
	p1, _ := Random(7)
	p2, _ := Random(7)
	if len(p1.Methods) != len(p2.Methods) {
		t.Error("Random not deterministic")
	}
	for seed := int64(0); seed < 30; seed++ {
		prog, atomic := Random(seed)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := core.Run(prog, core.Config{Analysis: core.DCSingle, Seed: 1, Atomic: atomic}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSoakFullSuiteAllAnalyses runs every benchmark at full scale under
// every checker configuration once — the heaviest single test, guarded by
// -short.
func TestSoakFullSuiteAllAnalyses(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	analyses := []core.Analysis{
		core.Baseline, core.Velodrome, core.VelodromeUnsound,
		core.DCSingle, core.DCFirst,
	}
	for _, name := range All() {
		built, err := Build(name, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		s := specFor(t, built)
		for _, a := range analyses {
			if _, err := core.Run(built.Prog, core.Config{
				Analysis: a,
				Sched:    vm.NewSticky(11, built.Stickiness),
				Atomic:   s.Atomic,
			}); err != nil {
				t.Errorf("%s/%v: %v", name, a, err)
			}
		}
	}
}

// TestRichGeneratorAlwaysTerminates soaks the rich random generator across
// many seeds and schedules: no deadlocks, no executor errors.
func TestRichGeneratorAlwaysTerminates(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		prog, _ := RandomRich(seed)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for sched := int64(0); sched < 4; sched++ {
			if _, err := vm.NewExec(prog, vm.Config{Sched: vm.NewRandom(sched)}).Run(); err != nil {
				t.Fatalf("seed %d sched %d: %v", seed, sched, err)
			}
		}
	}
}
