package workloads

import (
	"fmt"

	"doublechecker/internal/vm"
)

func init() {
	register("elevator", "discrete-event elevator: wait/notify between controller and lifts", buildElevator)
	register("hedc", "metadata crawler: a few small tasks, one racy result merge", buildHedc)
	register("philo", "dining philosophers with ordered fork acquisition", buildPhilo)
	register("sor", "successive over-relaxation: barrier-phased grid sweeps, nearly all non-transactional", buildSor)
	register("tsp", "branch-and-bound TSP: huge local search, racy shared bound", buildTsp)
	register("moldyn", "Java Grande molecular dynamics: local force loops, locked reductions", buildMoldyn)
	register("montecarlo", "Java Grande Monte Carlo: local simulation, contended result vector", buildMontecarlo)
	register("raytracer", "Java Grande ray tracer: read-shared scene, locked checksum", buildRaytracer)
}

// buildElevator: lifts wait on a controller monitor; the controller
// notifies work and updates a racy floor indicator. Not compute bound.
func buildElevator(scale float64) *Built {
	g := newGen("elevator", 701, scale)
	const lifts = 2
	mon := g.b.Object()
	floors := g.b.Object()
	calls := g.b.Object()

	racyIndicator := g.b.Method("updateIndicator")
	racyIndicator.Read(floors, 0).Compute(2).Write(floors, 0)

	serve := g.b.Method("serveFloor")
	serve.Acquire(mon).Read(calls, 0).Write(calls, 0).Release(mon)

	rounds := g.n(25)
	var liftThreads []vm.ThreadID
	for l := 0; l < lifts; l++ {
		lift := g.b.Method(fmt.Sprintf("lift%d", l))
		for r := 0; r < rounds; r++ {
			lift.Acquire(mon).Wait(mon).Release(mon)
			lift.Call(serve)
			lift.Call(racyIndicator)
		}
		liftThreads = append(liftThreads, g.b.ForkedThread(lift))
	}
	controller := g.b.Method("controller")
	for _, t := range liftThreads {
		controller.Fork(t)
	}
	for r := 0; r < rounds*lifts; r++ {
		controller.Write(calls, 1) // button press (non-transactional)
		controller.Acquire(mon).Notify(mon).Release(mon)
		controller.Compute(3)
	}
	for _, t := range liftThreads {
		controller.Join(t)
	}
	g.b.Thread(controller)
	return g.built(nil, []string{"updateIndicator"}, false, 0.2)
}

// buildHedc: two small crawler tasks merging into a shared result, one
// merge racy. Not compute bound.
func buildHedc(scale float64) *Built {
	g := newGen("hedc", 702, scale)
	results := g.b.Object()
	resLock := g.b.Object()

	merge := g.b.Method("mergeResult")
	merge.Acquire(resLock).Read(results, 0).Write(results, 0).Release(resLock)
	racyMeta := g.b.Method("recordMeta")
	racyMeta.Read(results, 1).Compute(16).Write(results, 1).Read(results, 2).Compute(8).Write(results, 2)

	tasks := g.n(18)
	for t := 0; t < 2; t++ {
		local := g.b.Object()
		fetch := g.b.Method(fmt.Sprintf("fetch%d", t))
		g.localBurst(fetch, local, 4, 2)
		main := g.b.Method(fmt.Sprintf("crawler%d", t))
		for i := 0; i < tasks; i++ {
			main.Call(fetch)
			main.Call(merge)
			if i%3 == t {
				main.Call(racyMeta)
			}
		}
		g.b.Thread(main)
	}
	return g.built(nil, []string{"recordMeta"}, false, 0.2)
}

// buildPhilo: five dining philosophers with ordered fork acquisition (no
// deadlock, no violation). Not compute bound.
func buildPhilo(scale float64) *Built {
	g := newGen("philo", 703, scale)
	const n = 5
	forks := g.b.Objects(n)
	table := g.b.Object()

	meals := g.n(10)
	for p := 0; p < n; p++ {
		lo, hi := p, (p+1)%n
		if lo > hi {
			lo, hi = hi, lo
		}
		eat := g.b.Method(fmt.Sprintf("eat%d", p))
		eat.Acquire(forks[lo]).Acquire(forks[hi])
		eat.Read(table, vm.FieldID(p)).Write(table, vm.FieldID(p))
		eat.Release(forks[hi]).Release(forks[lo])
		main := g.b.Method(fmt.Sprintf("philosopher%d", p))
		for m := 0; m < meals; m++ {
			main.Call(eat)
			main.Compute(5) // think
		}
		g.b.Thread(main)
	}
	return g.built(nil, nil, false, 0.3)
}

// buildSor: red-black grid sweeps; nearly everything is non-transactional
// grid access; phases separated by a lock-protected phase counter. Arrays
// carry part of the grid for the §5.4 array experiment.
func buildSor(scale float64) *Built {
	g := newGen("sor", 704, scale)
	const threads = 2
	rows := g.b.Objects(8)
	edgeRow := g.b.Object() // shared boundary row
	phaseLock := g.b.Object()
	phase := g.b.Object()
	grid := g.b.Array(32)

	advance := g.b.Method("advancePhase")
	advance.Acquire(phaseLock).Read(phase, 0).Write(phase, 0).Release(phaseLock)

	iters := g.n(12)
	for t := 0; t < threads; t++ {
		mine := rows[t*4 : t*4+4]
		main := g.b.Method(fmt.Sprintf("sweep%d", t))
		for it := 0; it < iters; it++ {
			for _, row := range mine {
				for c := 0; c < 10; c++ {
					main.Read(row, vm.FieldID(c))
					main.Write(row, vm.FieldID(c))
				}
			}
			main.Read(edgeRow, vm.FieldID(t)) // neighbour exchange
			for k := 0; k < 8; k++ {
				main.ArrayRead(grid, (t*7+it+k)%32)
				main.ArrayWrite(grid, (t*11+it+k)%32)
			}
			main.Call(advance)
			main.Compute(8)
		}
		g.b.Thread(main)
	}
	return g.built(nil, nil, true, 0.1)
}

// buildTsp: branch and bound. Workers run long non-transactional local
// searches and occasionally consult/update a shared best bound; the update
// is the classic racy check-then-act.
func buildTsp(scale float64) *Built {
	g := newGen("tsp", 705, scale)
	const workers = 3
	bound := g.b.Object()
	queueLock := g.b.Object()
	queue := g.b.Object()

	getWork := g.b.Method("getWork")
	getWork.Acquire(queueLock).Read(queue, 0).Write(queue, 0).Release(queueLock)
	racyBound := g.b.Method("updateBound")
	racyBound.Read(bound, 0).Compute(60).Write(bound, 0).Read(bound, 2).Compute(10).Write(bound, 2)
	racyPrune := g.b.Method("recordPrune")
	racyPrune.Read(bound, 1).Compute(12).Write(bound, 1)

	tours := g.n(14)
	for w := 0; w < workers; w++ {
		cities := g.b.Object()
		path := g.b.Array(16)
		main := g.b.Method(fmt.Sprintf("tspWorker%d", w))
		for t := 0; t < tours; t++ {
			main.Call(getWork)
			for k := 0; k < 12; k++ {
				main.ArrayRead(path, (t+k)%16).ArrayWrite(path, (t+k)%16)
			}
			// Huge non-transactional local search (Table 3: tsp executes
			// 694M non-transactional accesses against 386K transactional).
			g.localBurst(main, cities, 8, g.n(40))
			main.Read(bound, 0) // non-transactional bound probe
			main.Compute(30)
			main.Call(racyBound)
			if t%5 == 0 {
				main.Call(racyPrune)
			}
		}
		g.b.Thread(main)
	}
	return g.built(nil, []string{"updateBound", "recordPrune"}, true, 0.1)
}

// buildMoldyn: per-thread force loops with rare locked reductions; no
// violations and almost no cross-thread edges.
func buildMoldyn(scale float64) *Built {
	g := newGen("moldyn", 706, scale)
	const threads = 4
	sumLock := g.b.Object()
	sums := g.b.Object()
	coords := g.b.Array(64)

	reduce := g.b.Method("reduceEnergy")
	reduce.Acquire(sumLock).Read(sums, 0).Write(sums, 0).Release(sumLock)

	steps := g.n(10)
	for t := 0; t < threads; t++ {
		particles := g.b.Object()
		force := g.b.Method(fmt.Sprintf("forceLoop%d", t))
		g.localBurst(force, particles, 8, 10)
		for k := 0; k < 8; k++ {
			force.ArrayRead(coords, t*16+k)
			force.ArrayWrite(coords, t*16+k+1)
		}
		force.Compute(20)
		main := g.b.Method(fmt.Sprintf("mdWorker%d", t))
		for s := 0; s < steps; s++ {
			main.Call(force)
			main.Call(reduce)
		}
		g.b.Thread(main)
	}
	return g.built(nil, nil, true, 0.05)
}

// buildMontecarlo: local simulations appending to a contended result
// vector; the append lock ping-pong yields many imprecise SCCs (Table 3:
// 2,860) while only one rarely-hit racy method produces true violations.
func buildMontecarlo(scale float64) *Built {
	g := newGen("montecarlo", 707, scale)
	const threads = 4
	results := g.b.Object()
	resLock := g.b.Object()
	global := g.b.Object()

	appendResult := g.b.Method("appendResult")
	appendResult.Acquire(resLock).Read(results, 0).Write(results, 0).Compute(6).Read(results, 1).Write(results, 1).Release(resLock)
	racySeed := g.b.Method("reseedGlobal")
	racySeed.Read(global, 0).Compute(18).Write(global, 0)

	runs := g.n(45)
	for t := 0; t < threads; t++ {
		path := g.b.Object()
		samples := g.b.Array(16)
		simulate := g.b.Method(fmt.Sprintf("simulate%d", t))
		g.localBurst(simulate, path, 8, 12)
		for k := 0; k < 12; k++ {
			simulate.ArrayWrite(samples, (t+k)%16)
		}
		simulate.Compute(15)
		main := g.b.Method(fmt.Sprintf("mcWorker%d", t))
		for r := 0; r < runs; r++ {
			main.Call(simulate)
			main.Call(appendResult)
			if r%7 == 0 {
				main.Call(racySeed)
			}
		}
		g.b.Thread(main)
	}
	return g.built(nil, []string{"reseedGlobal"}, true, 0.3)
}

// buildRaytracer: the access-heaviest benchmark — large read-shared scene
// probed constantly, per-thread row rendering, a locked checksum; one
// long-running render method is excluded from the specification as the
// paper does after PCD memory exhaustion (§5.1).
func buildRaytracer(scale float64) *Built {
	g := newGen("raytracer", 708, scale)
	const threads = 4
	scene := g.b.Object()
	checksumLock := g.b.Object()
	checksum := g.b.Object()

	prep := g.b.Method("buildScene")
	for f := 0; f < 10; f++ {
		prep.Write(scene, vm.FieldID(f))
	}
	addChecksum := g.b.Method("addChecksum")
	addChecksum.Acquire(checksumLock).Read(checksum, 0).Write(checksum, 0).Release(checksumLock)

	rows := g.n(35)
	var workers []vm.ThreadID
	for t := 0; t < threads; t++ {
		strip := g.b.Object()
		fb := g.b.Array(32)
		renderScene := g.b.Method(fmt.Sprintf("renderScene%d", t))
		for r := 0; r < rows; r++ {
			for f := 0; f < 8; f++ {
				renderScene.Read(scene, vm.FieldID(f))
			}
			g.localBurst(renderScene, strip, 4, 2)
			renderScene.ArrayWrite(fb, r%32).ArrayWrite(fb, (r+1)%32)
		}
		main := g.b.Method(fmt.Sprintf("rtWorker%d", t))
		main.Call(renderScene)
		main.Call(addChecksum)
		workers = append(workers, g.b.ForkedThread(main))
	}
	driver := g.b.Method("rtMain")
	driver.Call(prep)
	for _, w := range workers {
		driver.Fork(w)
	}
	for _, w := range workers {
		driver.Join(w)
	}
	g.b.Thread(driver)
	exclusions := []string{"buildScene"}
	for t := 0; t < threads; t++ {
		exclusions = append(exclusions, fmt.Sprintf("renderScene%d", t))
	}
	return g.built(exclusions, nil, true, 0.05)
}
