package workloads

import (
	"fmt"

	"doublechecker/internal/vm"
)

func init() {
	register("eclipse6", "plugin build system: task queue, many worker-side caches, many racy cache updates", buildEclipse6)
	register("hsqldb6", "embedded database: row-locked transactions plus racy statistics counters", buildHsqldb6)
	register("lusearch6", "text search: thread-local index probes, one rarely-shared dictionary", buildLusearch6)
	register("xalan6", "XSLT transform: hot output-buffer lock ping-pong (the pathological case)", buildXalan6)
	register("avrora9", "AVR simulator: very many tiny atomic device handlers plus bulk non-transactional polling", buildAvrora9)
	register("jython9", "Python interpreter: a handful of giant single-threaded atomic regions", buildJython9)
	register("luindex9", "text indexing: few giant transactions, nearly no sharing", buildLuindex9)
	register("lusearch9", "text search (9.12): more transactions, a few shared-cache races", buildLusearch9)
	register("pmd9", "source analyzer: tiny, effectively single-threaded", buildPmd9)
	register("sunflow9", "renderer: read-shared scene, per-thread framebuffers, racy bounds update", buildSunflow9)
	register("xalan9", "XSLT transform (9.12): moderate lock contention, several races", buildXalan9)
}

// buildEclipse6: a driver forks N workers that pop tasks from a shared
// queue and run them against per-worker plugin state; a family of shared
// caches is updated by racy read-modify-write methods. Largest violation
// count in Table 2.
func buildEclipse6(scale float64) *Built {
	g := newGen("eclipse6", 601, scale)
	const workers = 4
	queue := g.b.Object()
	queueLock := g.b.Object()
	caches := g.b.Objects(6)
	plugins := g.b.Objects(workers)

	pop := g.b.Method("popTask")
	pop.Acquire(queueLock).Read(queue, 0).Write(queue, 0).Release(queueLock)

	// Racy cache updates: read-modify-write on a shared cache field with a
	// window, no lock. Six of them drive eclipse6's high violation count.
	var racy []string
	var racyMs []*vm.MethodBuilder
	for i, cache := range caches {
		m := g.b.Method(fmt.Sprintf("cacheUpdate%d", i))
		m.Read(cache, 0).Compute(14).Write(cache, 0)
		racy = append(racy, m.Name())
		racyMs = append(racyMs, m)
	}

	// Safe plugin processing: thread-local burst plus a scratch buffer.
	var procs []*vm.MethodBuilder
	for w := 0; w < workers; w++ {
		buf := g.b.Array(16)
		m := g.b.Method(fmt.Sprintf("process%d", w))
		g.localBurst(m, plugins[w], 8, 8)
		for k := 0; k < 8; k++ {
			m.ArrayWrite(buf, k).ArrayRead(buf, k)
		}
		m.Compute(6)
		procs = append(procs, m)
	}

	var workerThreads []vm.ThreadID
	tasks := g.n(60)
	for w := 0; w < workers; w++ {
		run := g.b.Method(fmt.Sprintf("worker%d", w))
		for t := 0; t < tasks; t++ {
			run.Call(pop).Call(procs[w])
			if t%3 == 0 {
				// All workers cycle through the caches in the same phase,
				// so every cache sees concurrent updates.
				run.Call(racyMs[(t/3)%len(racyMs)])
			}
			// Occasional non-transactional bookkeeping access.
			run.Read(plugins[w], 9)
		}
		workerThreads = append(workerThreads, g.b.ForkedThread(run))
	}
	driver := g.b.Method("driver")
	for _, t := range workerThreads {
		driver.Fork(t)
	}
	for _, t := range workerThreads {
		driver.Join(t)
	}
	g.b.Thread(driver)
	return g.built(nil, racy, true, 0.12)
}

// buildHsqldb6: row-locked database transactions plus a pair of racy
// statistics counters.
func buildHsqldb6(scale float64) *Built {
	g := newGen("hsqldb6", 602, scale)
	const clients = 3
	const nRows = 8
	rows := g.b.Objects(nRows)
	rowLocks := g.b.Objects(nRows)
	stats := g.b.Object()

	var txMethods []*vm.MethodBuilder
	for r := 0; r < nRows; r++ {
		m := g.b.Method(fmt.Sprintf("updateRow%d", r))
		m.Acquire(rowLocks[r])
		m.Read(rows[r], 0).Write(rows[r], 0).Read(rows[r], 1).Write(rows[r], 1)
		m.Release(rowLocks[r])
		txMethods = append(txMethods, m)
	}
	racyHit := g.b.Method("bumpHitCount")
	racyHit.Read(stats, 0).Compute(12).Write(stats, 0).Read(stats, 2).Compute(5).Write(stats, 2)
	racyMiss := g.b.Method("bumpMissCount")
	racyMiss.Read(stats, 1).Compute(12).Write(stats, 1).Read(stats, 3).Compute(5).Write(stats, 3)

	ops := g.n(90)
	for c := 0; c < clients; c++ {
		scratch := g.b.Object()
		page := g.b.Array(16)
		process := g.b.Method(fmt.Sprintf("processQuery%d", c))
		g.localBurst(process, scratch, 8, 6)
		for k := 0; k < 10; k++ {
			process.ArrayRead(page, k).ArrayWrite(page, k)
		}
		process.Compute(4)
		main := g.b.Method(fmt.Sprintf("client%d", c))
		for i := 0; i < ops; i++ {
			main.Call(process)
			main.Call(txMethods[g.rng.Intn(nRows)])
			if i%4 == c%4 {
				main.Call(racyHit)
			}
			if i%7 == 0 {
				main.Call(racyMiss)
			}
			main.Compute(4)
		}
		g.b.Thread(main)
	}
	return g.built(nil, []string{"bumpHitCount", "bumpMissCount"}, true, 0.1)
}

// searchLike builds the lusearch/luindex family: per-thread index work with
// a read-mostly shared dictionary.
func searchLike(g *gen, threads, queries, burst int, racyEvery int) (racy []string) {
	dict := g.b.Object()
	seed := g.b.Method("seedDict")
	seed.Write(dict, 0).Write(dict, 1)

	var update *vm.MethodBuilder
	if racyEvery > 0 {
		update = g.b.Method("updateDictStats")
		update.Read(dict, 2).Compute(14).Write(dict, 2).Read(dict, 3).Compute(6).Write(dict, 3)
		racy = append(racy, update.Name())
	}
	for t := 0; t < threads; t++ {
		local := g.b.Object()
		docs := g.b.Array(16)
		search := g.b.Method(fmt.Sprintf("search%d", t))
		g.localBurst(search, local, 5, burst)
		search.Read(dict, 0).Read(dict, 1) // read-shared probes
		for k := 0; k < 4; k++ {
			search.ArrayRead(docs, (t+k)%16).ArrayWrite(docs, (t+k+1)%16)
		}
		search.Compute(8)
		main := g.b.Method(fmt.Sprintf("main%d", t))
		if t == 0 {
			main.Call(seed)
		}
		for q := 0; q < queries; q++ {
			main.Call(search)
			if racyEvery > 0 && q%racyEvery == 0 {
				main.Call(update)
			}
			main.Write(local, 11) // non-transactional scratch
		}
		g.b.Thread(main)
	}
	return racy
}

func buildLusearch6(scale float64) *Built {
	g := newGen("lusearch6", 603, scale)
	// Rare racy window: Table 2 reports a single violation here.
	racy := searchLike(g, 4, g.n(70), 5, 24)
	return g.built(nil, racy, true, 0.08)
}

func buildLusearch9(scale float64) *Built {
	g := newGen("lusearch9", 608, scale)
	racy := searchLike(g, 4, g.n(90), 4, 8)
	return g.built(nil, racy, true, 0.1)
}

func buildLuindex9(scale float64) *Built {
	g := newGen("luindex9", 607, scale)
	// Nearly single-threaded: one indexer with giant transactions, one
	// idle-ish helper. Zero violations.
	local := g.b.Object()
	docs := g.b.Array(32)
	indexBatch := g.b.Method("indexBatch")
	g.localBurst(indexBatch, local, 8, g.n(120))
	for k := 0; k < 16; k++ {
		indexBatch.ArrayWrite(docs, k).ArrayRead(docs, k)
	}
	main := g.b.Method("indexer")
	for i := 0; i < 6; i++ {
		main.Call(indexBatch)
		main.Compute(20)
	}
	helperLocal := g.b.Object()
	helper := g.b.Method("helper")
	helper.Read(helperLocal, 0).Compute(10)
	g.b.Thread(main)
	g.b.Thread(helper)
	return g.built(nil, nil, true, 0.1)
}

// xalanLike builds the xalan family: worker threads hammering a shared
// output buffer under one hot lock (release-acquire ping-pong -> many
// imprecise IDG cycles) plus a set of racy helpers.
func xalanLike(g *gen, threads, rounds, racyCount, racyEvery, burstReps, emitEvery int) (racy []string) {
	out := g.b.Object()
	outLock := g.b.Object()
	templates := g.b.Object()

	emit := g.b.Method("emit")
	emit.Acquire(outLock).Read(out, 0).Write(out, 0).Write(out, 1).Release(outLock)

	var racyMs []*vm.MethodBuilder
	for i := 0; i < racyCount; i++ {
		m := g.b.Method(fmt.Sprintf("transformCache%d", i))
		m.Read(templates, vm.FieldID(i)).Compute(12).Write(templates, vm.FieldID(i))
		racy = append(racy, m.Name())
		racyMs = append(racyMs, m)
	}
	for t := 0; t < threads; t++ {
		local := g.b.Object()
		transform := g.b.Method(fmt.Sprintf("transform%d", t))
		g.localBurst(transform, local, 6, burstReps)
		transform.Read(templates, 10) // read-shared template table
		main := g.b.Method(fmt.Sprintf("main%d", t))
		for r := 0; r < rounds; r++ {
			main.Call(transform)
			if r%emitEvery == 0 {
				main.Call(emit)
			}
			if racyCount > 0 && r%racyEvery == 0 {
				main.Call(racyMs[(r/racyEvery)%racyCount])
			}
			main.Read(local, 9) // non-transactional
		}
		g.b.Thread(main)
	}
	return racy
}

func buildXalan6(scale float64) *Built {
	g := newGen("xalan6", 604, scale)
	racy := xalanLike(g, 4, g.n(110), 4, 5, 4, 1)
	return g.built(nil, racy, true, 0.25) // frequent preemption: heavy ping-pong
}

func buildXalan9(scale float64) *Built {
	g := newGen("xalan9", 609, scale)
	racy := xalanLike(g, 4, g.n(80), 4, 4, 12, 3)
	return g.built(nil, racy, true, 0.1)
}

// buildAvrora9: very many tiny atomic device handlers over shared device
// registers, plus heavy non-transactional polling loops.
func buildAvrora9(scale float64) *Built {
	g := newGen("avrora9", 605, scale)
	const nodes = 3
	devices := g.b.Objects(nodes)
	radio := g.b.Object()
	radioLock := g.b.Object()

	send := g.b.Method("radioSend")
	send.Acquire(radioLock).Write(radio, 0).Release(radioLock)
	recv := g.b.Method("radioRecv")
	recv.Acquire(radioLock).Read(radio, 0).Release(radioLock)

	racyClock := g.b.Method("syncClock")
	racyClock.Read(radio, 1).Compute(2).Write(radio, 1)
	racyIRQ := g.b.Method("postInterrupt")
	racyIRQ.Read(radio, 2).Compute(2).Write(radio, 2)

	var handlers [][]*vm.MethodBuilder
	for n := 0; n < nodes; n++ {
		var hs []*vm.MethodBuilder
		mem := g.b.Array(8)
		for h := 0; h < 3; h++ {
			m := g.b.Method(fmt.Sprintf("handler%d_%d", n, h))
			m.Read(devices[n], vm.FieldID(h)).Write(devices[n], vm.FieldID(h))
			m.ArrayRead(mem, h).ArrayWrite(mem, h)
			hs = append(hs, m)
		}
		handlers = append(handlers, hs)
	}
	cycles := g.n(220)
	for n := 0; n < nodes; n++ {
		main := g.b.Method(fmt.Sprintf("node%d", n))
		for c := 0; c < cycles; c++ {
			main.Call(handlers[n][c%3]) // tiny atomic transaction
			// Non-transactional polling burst: the bulk of avrora's
			// accesses happen outside transactions (Table 3).
			for p := 0; p < 3; p++ {
				main.Read(devices[n], 8).Read(devices[n], 9).Write(devices[n], 8)
			}
			if c%11 == n {
				main.Call(send)
			}
			if c%13 == n {
				main.Call(recv)
			}
			if c%29 == n {
				main.Call(racyClock)
			}
			if c%37 == n {
				main.Call(racyIRQ)
			}
		}
		g.b.Thread(main)
	}
	return g.built(nil, []string{"syncClock", "postInterrupt"}, true, 0.15)
}

// buildJython9: effectively single-threaded; a few giant atomic regions.
func buildJython9(scale float64) *Built {
	g := newGen("jython9", 606, scale)
	frames := g.b.Object()
	stack := g.b.Array(32)
	interp := g.b.Method("interpretModule")
	g.localBurst(interp, frames, 10, g.n(160))
	for k := 0; k < 32; k++ {
		interp.ArrayWrite(stack, k).ArrayRead(stack, k)
	}
	interp.Compute(40)
	main := g.b.Method("pyMain")
	for i := 0; i < 4; i++ {
		main.Call(interp)
	}
	idleLocal := g.b.Object()
	idle := g.b.Method("finalizerIdle")
	idle.Read(idleLocal, 0).Compute(8)
	g.b.Thread(main)
	g.b.Thread(idle)
	return g.built(nil, nil, true, 0.1)
}

// buildPmd9: tiny and effectively single-threaded.
func buildPmd9(scale float64) *Built {
	g := newGen("pmd9", 6060, scale)
	ast := g.b.Object()
	analyze := g.b.Method("analyzeFile")
	g.localBurst(analyze, ast, 6, g.n(40))
	main := g.b.Method("pmdMain")
	for i := 0; i < 4; i++ {
		main.Call(analyze)
		main.Compute(12)
	}
	other := g.b.Object()
	watcher := g.b.Method("watcher")
	watcher.Read(other, 0).Compute(6)
	g.b.Thread(main)
	g.b.Thread(watcher)
	return g.built(nil, nil, true, 0.1)
}

// buildSunflow9: renderer — shared scene read by everyone (RdSh), per
// thread framebuffer strips, a racy bounds update.
func buildSunflow9(scale float64) *Built {
	g := newGen("sunflow9", 6090, scale)
	const threads = 4
	scene := g.b.Object()
	bounds := g.b.Object()
	statsLock := g.b.Object()
	statsObj := g.b.Object()

	prep := g.b.Method("prepareScene")
	for f := 0; f < 8; f++ {
		prep.Write(scene, vm.FieldID(f))
	}
	racyBounds := g.b.Method("updateBounds")
	racyBounds.Read(bounds, 0).Compute(3).Write(bounds, 0)
	putStats := g.b.Method("accumulateStats")
	putStats.Acquire(statsLock).Read(statsObj, 0).Write(statsObj, 0).Release(statsLock)

	rows := g.n(50)
	var rendered []vm.ThreadID
	for t := 0; t < threads; t++ {
		strip := g.b.Object()
		fb := g.b.Array(16)
		renderRow := g.b.Method(fmt.Sprintf("renderRow%d", t))
		for f := 0; f < 6; f++ {
			renderRow.Read(scene, vm.FieldID(f)) // read-shared scene
		}
		g.localBurst(renderRow, strip, 6, 3)
		for k := 0; k < 8; k++ {
			renderRow.ArrayWrite(fb, (t+k)%16)
		}
		renderRow.Compute(10)
		worker := g.b.Method(fmt.Sprintf("renderWorker%d", t))
		for r := 0; r < rows; r++ {
			worker.Call(renderRow)
			if r%6 == t {
				worker.Call(racyBounds)
			}
			if r%9 == 0 {
				worker.Call(putStats)
			}
		}
		rendered = append(rendered, g.b.ForkedThread(worker))
	}
	driver := g.b.Method("sunflowMain")
	driver.Call(prep)
	for _, t := range rendered {
		driver.Fork(t)
	}
	for _, t := range rendered {
		driver.Join(t)
	}
	g.b.Thread(driver)
	// The paper excludes sunflow9's two long-running atomic methods after
	// PCD memory exhaustion (§5.1); prepareScene is our analogue.
	return g.built([]string{"prepareScene"}, []string{"updateBounds"}, true, 0.1)
}
