package workloads

import "doublechecker/internal/vm"

// TinyProgram is a micro program small enough for exhaustive schedule
// enumeration (a handful of scheduled steps per thread). The crosscheck
// harness walks every interleaving of each one with vm.Enumerator and checks
// the differential oracles on all of them — a proof, not a sample, for these
// programs.
type TinyProgram struct {
	Name   string
	Prog   *vm.Program
	Atomic func(vm.MethodID) bool
	// MayViolate reports whether some interleaving produces an atomicity
	// violation (so enumeration should find at least one) or none can.
	MayViolate bool
}

// Tiny returns the enumerable micro corpus. Every program is deterministic
// given the schedule, deadlock-free, and at most ~8 scheduled steps.
func Tiny() []TinyProgram {
	var out []TinyProgram

	{
		// The ISSUE's 2-thread/4-op shape: t0 runs an atomic read-modify-write
		// pair on o0 while t1 performs two unary writes to it. Interleavings
		// that put a t1 write between t0's read and write are violations.
		b := vm.NewBuilder("tinyrace")
		o := b.Object()
		inc := b.Method("inc").Read(o, 0).Write(o, 0)
		mut := b.Method("mut").Write(o, 0).Write(o, 0)
		b.Thread(inc)
		b.Thread(mut)
		atomic := inc.ID()
		out = append(out, TinyProgram{
			Name:       "tinyrace",
			Prog:       b.MustBuild(),
			Atomic:     func(m vm.MethodID) bool { return m == atomic },
			MayViolate: true,
		})
	}

	{
		// Two atomic increments on the same counter, properly locked: no
		// interleaving violates atomicity.
		b := vm.NewBuilder("tinylock")
		o := b.Object()
		lk := b.Object()
		var ids []vm.MethodID
		for _, name := range []string{"incA", "incB"} {
			m := b.Method(name).Acquire(lk).Read(o, 0).Write(o, 0).Release(lk)
			b.Thread(m)
			ids = append(ids, m.ID())
		}
		atomic := map[vm.MethodID]bool{ids[0]: true, ids[1]: true}
		out = append(out, TinyProgram{
			Name:       "tinylock",
			Prog:       b.MustBuild(),
			Atomic:     func(m vm.MethodID) bool { return atomic[m] },
			MayViolate: false,
		})
	}

	{
		// Two unlocked atomic methods racing in both directions over two
		// fields — the symmetric cycle of the paper's Figure 1.
		b := vm.NewBuilder("tinypair")
		o := b.Object()
		ma := b.Method("swapA").Read(o, 0).Write(o, 1)
		mb := b.Method("swapB").Read(o, 1).Write(o, 0)
		b.Thread(ma)
		b.Thread(mb)
		atomic := map[vm.MethodID]bool{ma.ID(): true, mb.ID(): true}
		out = append(out, TinyProgram{
			Name:       "tinypair",
			Prog:       b.MustBuild(),
			Atomic:     func(m vm.MethodID) bool { return atomic[m] },
			MayViolate: true,
		})
	}

	{
		// Three threads, disjoint objects: trivially violation-free but with
		// a wide schedule tree — exercises the enumerator's fan-out.
		b := vm.NewBuilder("tinydisjoint")
		objs := b.Objects(3)
		for i, name := range []string{"w0", "w1", "w2"} {
			m := b.Method(name).Write(objs[i], 0).Read(objs[i], 0)
			b.Thread(m)
		}
		prog := b.MustBuild()
		out = append(out, TinyProgram{
			Name:       "tinydisjoint",
			Prog:       prog,
			Atomic:     func(m vm.MethodID) bool { return true },
			MayViolate: false,
		})
	}

	return out
}
