package workloads

import (
	"fmt"

	"doublechecker/internal/vm"
)

// SCC-stress workloads: synthetic programs whose imprecise dependence graphs
// collapse into many large strongly connected components. The paper's suite
// mostly produces small, sparse SCCs (Table 3); these generators instead
// maximize SCC size and count so the concurrent PCD pool sees a steady
// stream of substantial replay jobs. Each one partitions time into epochs
// over distinct objects: dependence edges never leave an epoch's objects and
// per-thread program order only points forward, so every epoch contributes
// its own SCCs and the component count scales with the epoch count.

func init() {
	registerStress("sccring", "epoch chain of unlocked counter ping-pong: one dense SCC per epoch", buildSCCRing)
	registerStress("sccmesh", "two hot fields per epoch plus lock ping-pong: the largest SCCs", buildSCCMesh)
	registerStress("sccweb", "writers racing readers that fold into the component via their stat slots", buildSCCWeb)
}

// buildSCCRing: T threads hammer one unlocked counter per epoch with
// read-compute-write rounds. Interleaved read/read...write/write pairs form
// two-cycles, and overlapping two-cycles chain transitively, so each epoch
// melts into one large SCC.
func buildSCCRing(scale float64) *Built {
	g := newGen("sccring", 801, scale)
	const threads = 4
	epochs := g.n(6)
	rounds := g.n(5)

	var bumps []*vm.MethodBuilder
	var racy []string
	for e := 0; e < epochs; e++ {
		counter := g.b.Object()
		name := fmt.Sprintf("bumpEpoch%d", e)
		mb := g.b.Method(name)
		mb.Read(counter, 0).Compute(6).Write(counter, 0)
		bumps = append(bumps, mb)
		racy = append(racy, name)
	}
	for t := 0; t < threads; t++ {
		scratch := g.b.Object()
		main := g.b.Method(fmt.Sprintf("ringWorker%d", t))
		for e := 0; e < epochs; e++ {
			for r := 0; r < rounds; r++ {
				main.Call(bumps[e])
				g.localBurst(main, scratch, 2, 1)
			}
		}
		g.b.Thread(main)
	}
	return g.built(nil, racy, true, 0.4)
}

// buildSCCMesh: like sccring but each epoch's transaction touches two hot
// fields with compute between every access — four chances per transaction to
// interleave — and a lock-protected sibling method drags additional
// (innocent) transactions into each component through lock ping-pong.
func buildSCCMesh(scale float64) *Built {
	g := newGen("sccmesh", 802, scale)
	const threads = 4
	epochs := g.n(5)
	rounds := g.n(4)

	var mixes, tallies []*vm.MethodBuilder
	var racy []string
	for e := 0; e < epochs; e++ {
		hot := g.b.Object()
		lock := g.b.Object()
		ledger := g.b.Object()
		name := fmt.Sprintf("mixEpoch%d", e)
		mb := g.b.Method(name)
		mb.Read(hot, 0).Compute(4).Write(hot, 0).Compute(4).Read(hot, 1).Compute(4).Write(hot, 1)
		mixes = append(mixes, mb)
		racy = append(racy, name)
		tb := g.b.Method(fmt.Sprintf("tallyEpoch%d", e))
		tb.Acquire(lock).Read(ledger, 0).Write(ledger, 0).Release(lock)
		tallies = append(tallies, tb)
	}
	for t := 0; t < threads; t++ {
		main := g.b.Method(fmt.Sprintf("meshWorker%d", t))
		for e := 0; e < epochs; e++ {
			for r := 0; r < rounds; r++ {
				main.Call(mixes[e])
				main.Call(tallies[e])
			}
		}
		g.b.Thread(main)
	}
	return g.built(nil, racy, true, 0.4)
}

// buildSCCWeb: per epoch, two writer threads race an unlocked gauge while
// two reader threads consult it and then update their own (contended) stat
// slot. The read pulls each reader transaction into the writers' component;
// the stat-slot write gives the component edges back out through the
// readers, webbing all four threads' transactions together.
func buildSCCWeb(scale float64) *Built {
	g := newGen("sccweb", 803, scale)
	epochs := g.n(6)
	rounds := g.n(4)

	var writes, reads []*vm.MethodBuilder
	var racy []string
	for e := 0; e < epochs; e++ {
		gauge := g.b.Object()
		stats := g.b.Object()
		wname := fmt.Sprintf("postGauge%d", e)
		wb := g.b.Method(wname)
		wb.Read(gauge, 0).Compute(5).Write(gauge, 0)
		writes = append(writes, wb)
		rname := fmt.Sprintf("pollGauge%d", e)
		rb := g.b.Method(rname)
		rb.Read(gauge, 0).Compute(5).Read(stats, 0).Write(stats, 0)
		reads = append(reads, rb)
		racy = append(racy, wname, rname)
	}
	for t := 0; t < 4; t++ {
		main := g.b.Method(fmt.Sprintf("webWorker%d", t))
		for e := 0; e < epochs; e++ {
			for r := 0; r < rounds; r++ {
				if t < 2 {
					main.Call(writes[e])
				} else {
					main.Call(reads[e])
				}
				main.Compute(3)
			}
		}
		g.b.Thread(main)
	}
	return g.built(nil, racy, true, 0.4)
}
