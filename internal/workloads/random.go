package workloads

import (
	"fmt"
	"math/rand"

	"doublechecker/internal/vm"
)

// Random generates a random, deadlock-free multithreaded program for
// property-based testing: threads run mixes of atomic and non-atomic method
// calls plus raw unary accesses; methods read and write random fields of
// shared objects, optionally under a single lock (locks never nest, so
// deadlock is impossible). The returned predicate is the atomicity
// specification.
func Random(seed int64) (*vm.Program, func(vm.MethodID) bool) {
	rng := rand.New(rand.NewSource(seed))
	b := vm.NewBuilder(fmt.Sprintf("rand%d", seed))
	nObj := 2 + rng.Intn(4)
	objs := b.Objects(nObj)
	nLocks := rng.Intn(3)
	locks := b.Objects(nLocks)

	nMeth := 2 + rng.Intn(4)
	atomicSet := make(map[vm.MethodID]bool)
	var meths []*vm.MethodBuilder
	for i := 0; i < nMeth; i++ {
		mb := b.Method(fmt.Sprintf("m%d", i))
		useLock := nLocks > 0 && rng.Intn(3) == 0
		var lk vm.ObjectID
		if useLock {
			lk = locks[rng.Intn(nLocks)]
			mb.Acquire(lk)
		}
		for j := 0; j < 2+rng.Intn(5); j++ {
			obj := objs[rng.Intn(nObj)]
			f := vm.FieldID(rng.Intn(2))
			if rng.Intn(2) == 0 {
				mb.Read(obj, f)
			} else {
				mb.Write(obj, f)
			}
		}
		if useLock {
			mb.Release(lk)
		}
		if rng.Intn(2) == 0 {
			atomicSet[mb.ID()] = true
		}
		meths = append(meths, mb)
	}

	nThreads := 2 + rng.Intn(3)
	for i := 0; i < nThreads; i++ {
		main := b.Method(fmt.Sprintf("main%d", i))
		for j := 0; j < 3+rng.Intn(6); j++ {
			switch rng.Intn(4) {
			case 0:
				main.Write(objs[rng.Intn(nObj)], vm.FieldID(rng.Intn(2)))
			case 1:
				main.Read(objs[rng.Intn(nObj)], vm.FieldID(rng.Intn(2)))
			default:
				main.Call(meths[rng.Intn(nMeth)])
			}
		}
		b.Thread(main)
	}
	prog := b.MustBuild()
	return prog, func(m vm.MethodID) bool { return atomicSet[m] }
}

// RandomRich generates a random deadlock-free program exercising the full
// operation set: ordered nested locks, wait/notify (safe because notifies
// are banked and a dedicated never-waiting thread issues at least as many
// notifies as there are waits), structured fork/join, array accesses, and
// both atomic and non-atomic methods. Used by the cross-checker equivalence
// property tests, which need coverage of every dependence-edge source.
func RandomRich(seed int64) (*vm.Program, func(vm.MethodID) bool) {
	rng := rand.New(rand.NewSource(seed))
	b := vm.NewBuilder(fmt.Sprintf("rich%d", seed))
	nObj := 3 + rng.Intn(4)
	objs := b.Objects(nObj)
	nLocks := 2 + rng.Intn(2)
	locks := b.Objects(nLocks)
	mon := b.Object()
	arr := b.Array(8)

	atomicSet := make(map[vm.MethodID]bool)
	nMeth := 3 + rng.Intn(3)
	var meths []*vm.MethodBuilder
	for i := 0; i < nMeth; i++ {
		mb := b.Method(fmt.Sprintf("m%d", i))
		// Ordered nested locks: acquire in increasing index order.
		lo := rng.Intn(nLocks)
		hi := lo + rng.Intn(nLocks-lo)
		nested := rng.Intn(3) == 0 && hi > lo
		switch {
		case nested:
			mb.Acquire(locks[lo]).Acquire(locks[hi])
		case rng.Intn(2) == 0:
			mb.Acquire(locks[lo])
		default:
			lo = -1
		}
		for j := 0; j < 2+rng.Intn(5); j++ {
			obj := objs[rng.Intn(nObj)]
			f := vm.FieldID(rng.Intn(3))
			switch rng.Intn(5) {
			case 0:
				mb.ArrayRead(arr, rng.Intn(8))
			case 1:
				mb.ArrayWrite(arr, rng.Intn(8))
			case 2:
				mb.Write(obj, f)
			default:
				mb.Read(obj, f)
			}
		}
		switch {
		case nested:
			mb.Release(locks[hi]).Release(locks[lo])
		case lo >= 0:
			mb.Release(locks[lo])
		}
		if rng.Intn(2) == 0 {
			atomicSet[mb.ID()] = true
		}
		meths = append(meths, mb)
	}

	// Worker threads: some wait on the monitor a bounded number of times.
	nWorkers := 2 + rng.Intn(2)
	totalWaits := 0
	var workers []vm.ThreadID
	for i := 0; i < nWorkers; i++ {
		w := b.Method(fmt.Sprintf("worker%d", i))
		for j := 0; j < 3+rng.Intn(5); j++ {
			switch rng.Intn(6) {
			case 0:
				w.Acquire(mon).Wait(mon).Release(mon)
				totalWaits++
			case 1:
				w.Write(objs[rng.Intn(nObj)], vm.FieldID(rng.Intn(3)))
			case 2:
				w.Compute(1 + rng.Intn(8))
			default:
				w.Call(meths[rng.Intn(nMeth)])
			}
		}
		workers = append(workers, b.ForkedThread(w))
	}

	// The driver forks workers, issues enough notifies (banked, so order
	// does not matter), does some unary work, and joins.
	driver := b.Method("driver")
	for _, w := range workers {
		driver.Fork(w)
	}
	for i := 0; i < totalWaits; i++ {
		driver.Acquire(mon).Notify(mon).Release(mon)
		driver.Compute(1 + rng.Intn(4))
	}
	for j := 0; j < 2+rng.Intn(4); j++ {
		driver.Read(objs[rng.Intn(nObj)], vm.FieldID(rng.Intn(3)))
	}
	for _, w := range workers {
		driver.Join(w)
	}
	b.Thread(driver)
	prog := b.MustBuild()
	return prog, func(m vm.MethodID) bool { return atomicSet[m] }
}
