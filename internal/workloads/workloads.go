// Package workloads provides the synthetic benchmark suite that stands in
// for the paper's subject programs (§5.1): the multithreaded DaCapo
// benchmarks Jikes RVM 3.1.3 can run (eclipse6, hsqldb6, lusearch6, xalan6,
// avrora9, jython9, luindex9, lusearch9, pmd9, sunflow9, xalan9), the
// microbenchmarks elevator, hedc, philo, sor and tsp, and the Java Grande
// programs moldyn, montecarlo and raytracer.
//
// Each generator reproduces the *shape* that drives the paper's results —
// the ratios from Table 3 (regular transactions vs instrumented accesses vs
// non-transactional accesses, cross-thread edge density, SCC-proneness),
// the violation profile of Table 2 (which benchmarks have atomicity bugs at
// all, roughly how many), and the concurrency idioms that determine Octet
// behavior (thread-local bursts for fast paths, read-shared tables for
// RdSh, lock ping-pong for the xalan6 pathology, wait/notify for elevator).
// Dynamic counts are scaled down by roughly three orders of magnitude so
// the whole evaluation runs in seconds.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"doublechecker/internal/vm"
)

// Built is one instantiated benchmark.
type Built struct {
	Prog *vm.Program
	// InitialExclusions supplements spec.Initial: method names the paper's
	// methodology excludes up front (driver threads, methods hand-removed
	// after out-of-memory problems, §5.1).
	InitialExclusions []string
	// RacyMethods names the methods with injected atomicity violations —
	// ground truth for the soundness evaluation.
	RacyMethods []string
	// ComputeBound reports whether the benchmark joins Figure 7 (the paper
	// drops elevator, hedc and philo there: not compute bound).
	ComputeBound bool
	// Stickiness is the scheduler switch probability this workload is
	// designed for (lower = longer runs between preemptions).
	Stickiness float64
}

// Workload is a named benchmark generator. Build must be deterministic for
// a given scale.
type Workload struct {
	Name  string
	Desc  string
	Build func(scale float64) *Built
}

// registry holds the suite in paper order. stressRegistry holds the
// SCC-stress additions separately: they are not part of the paper's suite,
// so All() — which drives every table and figure — must not grow when they
// are added.
var registry, stressRegistry []Workload

func register(name, desc string, build func(scale float64) *Built) {
	registry = append(registry, Workload{Name: name, Desc: desc, Build: build})
}

func registerStress(name, desc string, build func(scale float64) *Built) {
	stressRegistry = append(stressRegistry, Workload{Name: name, Desc: desc, Build: build})
}

// All returns the benchmark names in the paper's order.
func All() []string {
	names := make([]string, len(registry))
	for i, w := range registry {
		names[i] = w.Name
	}
	return names
}

// Stress returns the names of the SCC-stress workloads: synthetic graphs
// with many large strongly connected components, built to exercise the
// concurrent PCD hand-off rather than reproduce any paper benchmark.
func Stress() []string {
	names := make([]string, len(stressRegistry))
	for i, w := range stressRegistry {
		names[i] = w.Name
	}
	return names
}

// Get returns the named workload, searching the paper suite and the stress
// set.
func Get(name string) (Workload, error) {
	for _, reg := range [][]Workload{registry, stressRegistry} {
		for _, w := range reg {
			if w.Name == name {
				return w, nil
			}
		}
	}
	var known []string
	for _, reg := range [][]Workload{registry, stressRegistry} {
		for _, w := range reg {
			known = append(known, w.Name)
		}
	}
	sort.Strings(known)
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, known)
}

// Build instantiates the named workload at the given scale (1.0 = default;
// smaller = faster).
func Build(name string, scale float64) (*Built, error) {
	w, err := Get(name)
	if err != nil {
		return nil, err
	}
	return w.Build(scale), nil
}

// gen wraps a builder with scaling and structural randomness (fixed seed:
// the program structure is deterministic; only the schedule varies between
// trials).
type gen struct {
	b     *vm.Builder
	rng   *rand.Rand
	scale float64
}

func newGen(name string, seed int64, scale float64) *gen {
	if scale <= 0 {
		scale = 1
	}
	return &gen{b: vm.NewBuilder(name), rng: rand.New(rand.NewSource(seed)), scale: scale}
}

// n scales a dynamic count, with a floor of 1.
func (g *gen) n(base int) int {
	v := int(float64(base) * g.scale)
	if v < 1 {
		v = 1
	}
	return v
}

// localBurst appends a run of thread-local accesses (Octet fast paths) to
// mb: reads and writes over obj's fields.
func (g *gen) localBurst(mb *vm.MethodBuilder, obj vm.ObjectID, fields, reps int) {
	for r := 0; r < reps; r++ {
		for f := 0; f < fields; f++ {
			if (r+f)%3 == 0 {
				mb.Write(obj, vm.FieldID(f))
			} else {
				mb.Read(obj, vm.FieldID(f))
			}
		}
	}
}

// built finalizes the program.
func (g *gen) built(extra []string, racy []string, computeBound bool, stickiness float64) *Built {
	return &Built{
		Prog:              g.b.MustBuild(),
		InitialExclusions: extra,
		RacyMethods:       racy,
		ComputeBound:      computeBound,
		Stickiness:        stickiness,
	}
}
