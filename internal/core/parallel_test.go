package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"doublechecker/internal/cost"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/txn"
)

// TestPCDWorkersMatchSerial: the concurrent pool must be observationally
// identical to the serial checker — violations, PCD stats, and the
// deterministic telemetry snapshot, byte for byte — across random programs
// and worker counts.
func TestPCDWorkersMatchSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		prog, atomic := genProgram(seed)
		serial, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		want := serial.Telemetry.Deterministic().JSON()
		for _, workers := range []int{2, 4, 8} {
			par, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic, PCDWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := ViolationSignatures(par, prog), ViolationSignatures(serial, prog); len(got) != len(want) {
				t.Fatalf("seed %d workers %d: %v vs serial %v", seed, workers, got, want)
			} else {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d workers %d: violation %d: %q vs %q", seed, workers, i, got[i], want[i])
					}
				}
			}
			if par.PCD != serial.PCD {
				t.Errorf("seed %d workers %d: PCD stats %+v vs serial %+v", seed, workers, par.PCD, serial.PCD)
			}
			if got := par.Telemetry.Deterministic().JSON(); !bytes.Equal(got, want) {
				t.Errorf("seed %d workers %d: deterministic snapshots differ", seed, workers)
			}
			if len(par.PCDQuarantined) != 0 {
				t.Errorf("seed %d workers %d: unexpected quarantines %v", seed, workers, par.PCDQuarantined)
			}
		}
	}
}

// TestPCDWorkersOneIsSerial: 0 and 1 keep the in-line replay — no pool
// metrics appear even in the raw (non-deterministic) snapshot.
func TestPCDWorkersOneIsSerial(t *testing.T) {
	prog, atomic := genContended(3)
	for _, workers := range []int{0, 1} {
		r, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic, PCDWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if v := r.Telemetry.Gauges[telemetry.PCDPoolWorkers]; v != 0 {
			t.Errorf("workers=%d: pool gauge %v present in serial run", workers, v)
		}
	}
	r, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic, PCDWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Telemetry.Gauges[telemetry.PCDPoolWorkers]; v != 2 {
		t.Errorf("pool gauge = %v, want 2", v)
	}
	if _, ok := r.Telemetry.Deterministic().Gauges[telemetry.PCDPoolWorkers]; ok {
		t.Error("Deterministic() kept a live-only pool gauge")
	}
}

// TestOffCriticalPathCostConsistent pins the serial-path asymmetry fix: both
// the ParallelPCD cost model and the real worker pool charge PCD replay off
// the critical path, reported through Result.OffCriticalPathCost, and both
// honor the memory budget there (a giant SCC replay spike must be able to
// trip the modelled OOM even when it does not delay the program).
func TestOffCriticalPathCostConsistent(t *testing.T) {
	prog, atomic := genContended(7)

	run := func(cfg Config) *Result {
		cfg.Analysis = DCSingle
		cfg.Seed = 5
		cfg.Atomic = atomic
		cfg.Meter = cost.NewMeter(cost.Default())
		r, err := Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	inline := run(Config{})
	if inline.OffCriticalPathCost != 0 {
		t.Errorf("in-line run reported off-critical cost %d", inline.OffCriticalPathCost)
	}

	serial := run(Config{ParallelPCD: true})
	if serial.OffCriticalPathCost == 0 || serial.OffCriticalPathCost != serial.OffCritical.Total {
		t.Errorf("serial ParallelPCD: OffCriticalPathCost=%d OffCritical.Total=%d",
			serial.OffCriticalPathCost, serial.OffCritical.Total)
	}

	pooled := run(Config{PCDWorkers: 4})
	if pooled.OffCriticalPathCost == 0 || pooled.OffCriticalPathCost != pooled.OffCritical.Total {
		t.Errorf("pooled: OffCriticalPathCost=%d OffCritical.Total=%d",
			pooled.OffCriticalPathCost, pooled.OffCritical.Total)
	}
	// Moving PCD off the critical path must actually relieve the main meter.
	if pooled.Cost.Total >= inline.Cost.Total {
		t.Errorf("pooled critical path %d not below in-line %d", pooled.Cost.Total, inline.Cost.Total)
	}

	// The budget reaches the off-path meters: with a budget tiny enough that
	// replay temporaries exceed it, both off-path modes must report OOM there.
	for name, cfg := range map[string]Config{
		"serial": {ParallelPCD: true, MemoryBudget: 256},
		"pooled": {PCDWorkers: 4, MemoryBudget: 256},
	} {
		r := run(cfg)
		if !r.OffCritical.OOM {
			t.Errorf("%s: off-critical meter did not trip the 256-byte budget", name)
		}
	}
}

// TestPCDPoolQuarantine: a worker panic is contained to its SCC — the run
// completes, other SCCs are still checked, and the failure is recorded with
// a stable stack digest.
func TestPCDPoolQuarantine(t *testing.T) {
	prog, atomic := genContended(9)
	r, err := Run(prog, Config{
		Analysis:   DCSingle,
		Seed:       5,
		Atomic:     atomic,
		PCDWorkers: 2,
		PCDPoolHook: func(index uint64, scc []*txn.Txn) {
			if index == 0 {
				panic("injected SCC fault")
			}
		},
	})
	if err != nil {
		t.Fatalf("quarantined run must not fail: %v", err)
	}
	if len(r.PCDQuarantined) != 1 {
		t.Fatalf("quarantined = %v, want exactly one", r.PCDQuarantined)
	}
	q := r.PCDQuarantined[0]
	if q.Index != 0 || q.Err == "" || q.Digest == "" {
		t.Errorf("quarantine record incomplete: %+v", q)
	}
	if r.ICD.SCCs < 2 {
		t.Fatalf("workload produced %d SCCs; test needs several", r.ICD.SCCs)
	}
	if r.PCD.SCCsProcessed != uint64(r.ICD.SCCs-1) {
		t.Errorf("processed %d SCCs; want %d (all but the quarantined one)",
			r.PCD.SCCsProcessed, r.ICD.SCCs-1)
	}
}

// TestPCDPoolCancellation: canceling the run drains the pool — RunContext
// returns promptly and the workers exit (no goroutine leak across many
// canceled runs).
func TestPCDPoolCancellation(t *testing.T) {
	prog, atomic := genContended(13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_, err := RunContext(ctx, prog, Config{Analysis: DCSingle, Seed: 5, Atomic: atomic, PCDWorkers: 4})
		if err == nil {
			t.Fatal("canceled run must fail")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+10 {
		t.Errorf("goroutines grew from %d to %d: pool workers leaked", before, n)
	}
}
