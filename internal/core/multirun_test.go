package core

import (
	"context"
	"errors"
	"testing"

	"doublechecker/internal/vm"
)

// stuckProg always deadlocks under every schedule: its only thread waits on
// a monitor nobody will ever notify.
func stuckProg() (*vm.Program, func(vm.MethodID) bool) {
	b := vm.NewBuilder("stuck")
	mon := b.Object()
	main := b.Method("main")
	main.Acquire(mon).Wait(mon).Release(mon)
	b.Thread(main)
	prog := b.MustBuild()
	return prog, func(vm.MethodID) bool { return false }
}

// abbaProg deadlocks only under schedules that interleave the two opposing
// lock acquisitions — some seeds survive, some do not.
func abbaProg() (*vm.Program, func(vm.MethodID) bool) {
	b := vm.NewBuilder("abba")
	a, bb := b.Object(), b.Object()
	obj := b.Object()
	m0 := b.Method("m0")
	m0.Acquire(a).Acquire(bb).Read(obj, 0).Release(bb).Release(a)
	m1 := b.Method("m1")
	m1.Acquire(bb).Acquire(a).Write(obj, 0).Release(a).Release(bb)
	main0 := b.Method("main0")
	main0.CallN(m0, 3)
	main1 := b.Method("main1")
	main1.CallN(m1, 3)
	b.Thread(main0)
	b.Thread(main1)
	prog := b.MustBuild()
	atomic := func(vm.MethodID) bool { return false }
	return prog, atomic
}

func TestMultiRunToleratesIndividualFirstRunFailures(t *testing.T) {
	prog, atomic := abbaProg()
	// Deterministic: with the default random scheduler, seeds 0..19 split
	// into deadlocking and surviving schedules. Find the split, then check
	// the pipeline tolerates exactly the deadlocking ones.
	var failSeeds, goodSeeds []int64
	for seed := int64(0); seed < 20; seed++ {
		_, err := Run(prog, Config{Analysis: DCFirst, Seed: seed, Atomic: atomic})
		if err != nil {
			failSeeds = append(failSeeds, seed)
		} else {
			goodSeeds = append(goodSeeds, seed)
		}
	}
	if len(failSeeds) == 0 || len(goodSeeds) == 0 {
		t.Skipf("seed range produced no mix (failing=%d surviving=%d); pick other seeds", len(failSeeds), len(goodSeeds))
	}
	// The second run reuses a seed verified to survive (DCFirst and
	// DCSecond share the executor and scheduler, so the interleaving — and
	// hence any deadlock — is identical across analyses).
	o, err := MultiRunContext(context.Background(), prog, atomic, 20, 0, goodSeeds[0])
	if err != nil {
		t.Fatalf("pipeline failed despite %d surviving first runs: %v", len(goodSeeds), err)
	}
	if len(o.Firsts) != len(goodSeeds) || len(o.FirstFailures) != len(failSeeds) {
		t.Fatalf("firsts=%d failures=%d, want %d/%d", len(o.Firsts), len(o.FirstFailures), len(goodSeeds), len(failSeeds))
	}
	for _, f := range o.FirstFailures {
		if !errors.Is(f.Err, vm.ErrDeadlock) {
			t.Fatalf("first-run failure lost its cause: %+v", f)
		}
		if f.Seed != int64(f.Index) {
			t.Fatalf("failure seed %d does not match index %d (seedBase 0)", f.Seed, f.Index)
		}
	}
	if o.Second == nil {
		t.Fatal("no second run result")
	}
}

func TestMultiRunErrorsWhenAllFirstRunsFail(t *testing.T) {
	prog, atomic := stuckProg()
	o, err := MultiRunContext(context.Background(), prog, atomic, 3, 0, 99)
	if err == nil {
		t.Fatal("want error when every first run deadlocks")
	}
	if !errors.Is(err, vm.ErrDeadlock) {
		t.Fatalf("error does not wrap vm.ErrDeadlock: %v", err)
	}
	if len(o.FirstFailures) != 3 || len(o.Firsts) != 0 {
		t.Fatalf("outcome %+v", o)
	}
	if o.Second != nil {
		t.Fatal("second run ran despite an empty first-run ensemble")
	}
}

func TestMultiRunSecondRunFailurePropagates(t *testing.T) {
	// All first runs succeed on surviving seeds, then the second run is
	// driven into deadlock via its seed. abba seeds: reuse the discovered
	// surviving/failing split.
	prog, atomic := abbaProg()
	var good, bad []int64
	for seed := int64(0); seed < 40; seed++ {
		_, err := Run(prog, Config{Analysis: DCFirst, Seed: seed, Atomic: atomic})
		if err != nil {
			bad = append(bad, seed)
		} else {
			good = append(good, seed)
		}
	}
	if len(good) == 0 || len(bad) == 0 {
		t.Skip("no seed mix")
	}
	// DCFirst and DCSecond share the executor and scheduler, so a seed's
	// interleaving — and hence its deadlock — is identical across analyses.
	o, err := MultiRunContext(context.Background(), prog, atomic, 1, good[0], bad[0])
	if err == nil {
		t.Fatal("want second-run failure")
	}
	if !errors.Is(err, vm.ErrDeadlock) {
		t.Fatalf("error does not wrap vm.ErrDeadlock: %v", err)
	}
	_ = o
}

func TestMultiRunContextCanceled(t *testing.T) {
	prog, atomic := abbaProg()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MultiRunContext(ctx, prog, atomic, 5, 0, 99)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunContextCanceledReturnsError(t *testing.T) {
	prog, atomic := abbaProg()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, prog, Config{Analysis: DCSingle, Atomic: atomic})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
