// Canonical human-readable check reports. dcheck, dctrace and the dcserve
// service all render results through these helpers, which is what makes the
// service's correctness contract checkable: a report served over HTTP for a
// trace is byte-identical to `dcheck -replay` on the same file, because both
// are this code.

package core

import (
	"fmt"
	"strings"

	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
)

// ViolationSummary renders a result's violation count and blamed methods in
// the canonical two-line form every tool uses.
func ViolationSummary(prog *vm.Program, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d dynamic violations\n", len(res.Violations))
	if names := res.BlamedMethodNames(prog); len(names) > 0 {
		fmt.Fprintf(&b, "blamed methods: %v\n", names)
	} else {
		b.WriteString("no atomicity violations detected\n")
	}
	return b.String()
}

// ReplayReport renders the canonical replay report for trace d checked as
// res: the trace identity line (name is the caller's display name for the
// trace — a path for dcheck, an upload name for dcserve) followed by the
// violation summary. Deterministic for a given (d, res): serving it from a
// worker pool of any size yields identical bytes.
func ReplayReport(name string, d *trace.Data, res *Result) string {
	h := &d.Header
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: program %s, seed %d, %d events, source %q\n",
		name, h.Program.Name, h.Seed, d.Counts.Total(), h.Source)
	b.WriteString(ViolationSummary(h.Program, res))
	return b.String()
}
