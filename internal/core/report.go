// Canonical human-readable check reports. dcheck, dctrace and the dcserve
// service all render results through these helpers, which is what makes the
// service's correctness contract checkable: a report served over HTTP for a
// trace is byte-identical to `dcheck -replay` on the same file, because both
// are this code.

package core

import (
	"fmt"
	"strings"

	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
)

// ViolationSummary renders a result's violation count and blamed methods in
// the canonical two-line form every tool uses.
func ViolationSummary(prog *vm.Program, res *Result) string {
	return ViolationSummaryFrom(len(res.Violations), res.BlamedMethodNames(prog))
}

// ViolationSummaryFrom is ViolationSummary over pre-extracted fields: the
// violation count and the sorted blamed-method names. The result store
// caches exactly these fields and re-renders through here, so a cache hit
// is byte-identical to a cold run by construction — both paths are this
// code.
func ViolationSummaryFrom(violations int, blamed []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d dynamic violations\n", violations)
	if len(blamed) > 0 {
		fmt.Fprintf(&b, "blamed methods: %v\n", blamed)
	} else {
		b.WriteString("no atomicity violations detected\n")
	}
	return b.String()
}

// ReplayReport renders the canonical replay report for trace d checked as
// res: the trace identity line (name is the caller's display name for the
// trace — a path for dcheck, an upload name for dcserve) followed by the
// violation summary. Deterministic for a given (d, res): serving it from a
// worker pool of any size yields identical bytes.
func ReplayReport(name string, d *trace.Data, res *Result) string {
	h := &d.Header
	return ReplayReportFrom(name, h.Program.Name, h.Seed, d.Counts.Total(),
		h.Source, len(res.Violations), res.BlamedMethodNames(h.Program))
}

// ReplayReportFrom is ReplayReport over pre-extracted fields, for callers
// that hold a cached result rather than a decoded trace. The display name
// is per-request and never cached; everything else comes from the cache
// entry.
func ReplayReportFrom(name, program string, seed int64, events uint64, source string, violations int, blamed []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: program %s, seed %d, %d events, source %q\n",
		name, program, seed, events, source)
	b.WriteString(ViolationSummaryFrom(violations, blamed))
	return b.String()
}
