package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"doublechecker/internal/cost"
	"doublechecker/internal/pcd"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// racyProgram returns the canonical racy atomic increment plus its script
// and spec.
func racyProgram() (*vm.Program, []vm.ThreadID, func(vm.MethodID) bool) {
	b := vm.NewBuilder("racy")
	o := b.Object()
	inc := b.Method("inc")
	inc.Read(o, 0).Write(o, 0)
	m0 := b.Method("main0")
	m0.Call(inc)
	m1 := b.Method("main1")
	m1.Call(inc)
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	incID := prog.MethodByName("inc").ID
	return prog, []vm.ThreadID{0, 1, 0, 1, 1, 0}, func(m vm.MethodID) bool { return m == incID }
}

func TestSingleRunFindsRacyViolation(t *testing.T) {
	prog, script, atomic := racyProgram()
	r, err := Run(prog, Config{Analysis: DCSingle, Sched: vm.NewScripted(script, true), Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) == 0 {
		t.Fatal("single-run mode must find the violation")
	}
	if names := r.BlamedMethodNames(prog); len(names) != 1 || names[0] != "inc" {
		t.Errorf("blamed = %v", names)
	}
}

func TestVelodromeFindsSameRacyViolation(t *testing.T) {
	prog, script, atomic := racyProgram()
	r, err := Run(prog, Config{Analysis: Velodrome, Sched: vm.NewScripted(script, true), Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	if names := r.BlamedMethodNames(prog); len(names) != 1 || names[0] != "inc" {
		t.Errorf("blamed = %v", names)
	}
}

func TestFirstRunProducesStaticInfo(t *testing.T) {
	prog, script, atomic := racyProgram()
	r, err := Run(prog, Config{Analysis: DCFirst, Sched: vm.NewScripted(script, true), Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Error("first run reports no precise violations")
	}
	if r.StaticMethods[prog.MethodByName("inc").ID] == 0 {
		t.Errorf("static methods missing inc: %v", r.StaticMethods)
	}
	if r.Txn.LogEntries != 0 {
		t.Error("first run must not log")
	}
}

func TestMultiRunPipelineFindsViolation(t *testing.T) {
	prog, _, atomic := racyProgram()
	// Random scheduling across several first-run seeds; at least one seed
	// triggers the cycle, and the second run then monitors inc.
	var found bool
	for secondSeed := int64(0); secondSeed < 10 && !found; secondSeed++ {
		_, second, err := MultiRun(prog, atomic, 10, 100, secondSeed)
		if err != nil {
			t.Fatal(err)
		}
		found = len(second.Violations) > 0
	}
	if !found {
		t.Error("multi-run pipeline found no violation in 10 second-run seeds")
	}
}

func TestSecondRunWithEmptyFilterInstrumentsNothing(t *testing.T) {
	prog, script, atomic := racyProgram()
	r, err := Run(prog, Config{
		Analysis: DCSecond,
		Sched:    vm.NewScripted(script, true),
		Atomic:   atomic,
		Filter:   &txn.Filter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ICD.RegularAccesses+r.ICD.UnaryAccesses != 0 {
		t.Errorf("empty filter instrumented %d accesses",
			r.ICD.RegularAccesses+r.ICD.UnaryAccesses)
	}
}

func TestSecondRunWithFullFilterEqualsSingleRun(t *testing.T) {
	prog, script, atomic := racyProgram()
	full := &txn.Filter{Methods: map[vm.MethodID]bool{}, Unary: true}
	for _, m := range prog.Methods {
		full.Methods[m.ID] = true
	}
	single, err := Run(prog, Config{Analysis: DCSingle, Sched: vm.NewScripted(script, true), Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(prog, Config{Analysis: DCSecond, Sched: vm.NewScripted(script, true), Atomic: atomic, Filter: full})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Violations) != len(second.Violations) {
		t.Errorf("single %d vs full-filter second %d violations",
			len(single.Violations), len(second.Violations))
	}
}

func TestPCDOnlyFindsViolationAtHigherCost(t *testing.T) {
	prog, script, atomic := racyProgram()
	meterSingle := cost.NewMeter(cost.Default())
	single, err := Run(prog, Config{Analysis: DCSingle, Sched: vm.NewScripted(script, true), Atomic: atomic, Meter: meterSingle})
	if err != nil {
		t.Fatal(err)
	}
	meterPCD := cost.NewMeter(cost.Default())
	pcdOnly, err := Run(prog, Config{Analysis: PCDOnly, Sched: vm.NewScripted(script, true), Atomic: atomic, Meter: meterPCD})
	if err != nil {
		t.Fatal(err)
	}
	if len(pcdOnly.Violations) == 0 {
		t.Error("PCD-only must find the violation")
	}
	if pcdOnly.PCD.EntriesReplayed <= single.PCD.EntriesReplayed {
		t.Errorf("PCD-only should replay more entries: %d vs %d",
			pcdOnly.PCD.EntriesReplayed, single.PCD.EntriesReplayed)
	}
}

func TestBaselineHasNoAnalysisCost(t *testing.T) {
	prog, script, atomic := racyProgram()
	meter := cost.NewMeter(cost.Default())
	r, err := Run(prog, Config{Analysis: Baseline, Sched: vm.NewScripted(script, true), Atomic: atomic, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 || r.Cost.Total == 0 {
		t.Errorf("baseline: %d violations, cost %d", len(r.Violations), r.Cost.Total)
	}
}

func TestParseAnalysis(t *testing.T) {
	for _, a := range []Analysis{Baseline, Velodrome, VelodromeUnsound, DCSingle, DCFirst, DCSecond, VeloSecond, PCDOnly} {
		got, err := ParseAnalysis(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: got %v err %v", a, got, err)
		}
	}
	if _, err := ParseAnalysis("nope"); err == nil {
		t.Error("expected error for unknown analysis")
	}
}

// ---------------------------------------------------------------------------
// Random program generation for property tests.

// genProgram builds a random, deadlock-free multithreaded program: threads
// run sequences of atomic and non-atomic method calls plus raw accesses;
// methods read/write random fields of shared objects, optionally under a
// single lock (no nested locks, so no deadlock).
func genProgram(seed int64) (*vm.Program, func(vm.MethodID) bool) {
	rng := rand.New(rand.NewSource(seed))
	b := vm.NewBuilder(fmt.Sprintf("rand%d", seed))
	nObj := 2 + rng.Intn(4)
	objs := b.Objects(nObj)
	nLocks := rng.Intn(3)
	locks := b.Objects(nLocks)

	nMeth := 2 + rng.Intn(4)
	atomicSet := make(map[vm.MethodID]bool)
	var meths []*vm.MethodBuilder
	for i := 0; i < nMeth; i++ {
		mb := b.Method(fmt.Sprintf("m%d", i))
		useLock := nLocks > 0 && rng.Intn(3) == 0
		var lk vm.ObjectID
		if useLock {
			lk = locks[rng.Intn(nLocks)]
			mb.Acquire(lk)
		}
		for j := 0; j < 2+rng.Intn(5); j++ {
			obj := objs[rng.Intn(nObj)]
			f := vm.FieldID(rng.Intn(2))
			if rng.Intn(2) == 0 {
				mb.Read(obj, f)
			} else {
				mb.Write(obj, f)
			}
		}
		if useLock {
			mb.Release(lk)
		}
		if rng.Intn(2) == 0 {
			atomicSet[mb.ID()] = true
		}
		meths = append(meths, mb)
	}

	nThreads := 2 + rng.Intn(3)
	for i := 0; i < nThreads; i++ {
		main := b.Method(fmt.Sprintf("main%d", i))
		for j := 0; j < 3+rng.Intn(6); j++ {
			switch rng.Intn(4) {
			case 0: // raw unary access
				main.Write(objs[rng.Intn(nObj)], vm.FieldID(rng.Intn(2)))
			case 1:
				main.Read(objs[rng.Intn(nObj)], vm.FieldID(rng.Intn(2)))
			default:
				main.Call(meths[rng.Intn(nMeth)])
			}
		}
		b.Thread(main)
	}
	prog := b.MustBuild()
	return prog, func(m vm.MethodID) bool { return atomicSet[m] }
}

func blamedSet(r *Result, prog *vm.Program) string {
	names := r.BlamedMethodNames(prog)
	sort.Strings(names)
	return fmt.Sprintf("%v", names)
}

// TestPropertySingleRunAgreesWithVelodrome is the central soundness and
// precision check: on the identical interleaving (same seed), DoubleChecker
// single-run and Velodrome must agree on whether the execution contains any
// conflict-serializability violation.
func TestPropertySingleRunAgreesWithVelodrome(t *testing.T) {
	agreeBlamed := 0
	total := 0
	for seed := int64(0); seed < 60; seed++ {
		prog, atomic := genProgram(seed)
		for sched := int64(0); sched < 3; sched++ {
			velo, err := Run(prog, Config{Analysis: Velodrome, Seed: sched, Atomic: atomic})
			if err != nil {
				t.Fatalf("seed %d/%d velo: %v", seed, sched, err)
			}
			dc, err := Run(prog, Config{Analysis: DCSingle, Seed: sched, Atomic: atomic})
			if err != nil {
				t.Fatalf("seed %d/%d dc: %v", seed, sched, err)
			}
			if (len(velo.Violations) > 0) != (len(dc.Violations) > 0) {
				t.Errorf("seed %d sched %d: velodrome %d violations, single-run %d",
					seed, sched, len(velo.Violations), len(dc.Violations))
			}
			total++
			if blamedSet(velo, prog) == blamedSet(dc, prog) {
				agreeBlamed++
			}
		}
	}
	// Blame assignment depends on which path the cycle search extracts, so
	// exact blame equality is not guaranteed; but it should hold nearly
	// always. Alert if it degrades badly.
	if agreeBlamed*10 < total*8 {
		t.Errorf("blame agreement only %d/%d", agreeBlamed, total)
	}
}

// TestPropertyICDSoundFilter: every transaction of every precise cycle that
// Velodrome finds must appear in some ICD SCC on the same interleaving
// (paper §3.2.5). Transactions are matched across checkers by StartSeq,
// which is identical because the schedules are identical.
func TestPropertyICDSoundFilter(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		prog, atomic := genProgram(seed)
		for sched := int64(0); sched < 2; sched++ {
			velo, err := Run(prog, Config{Analysis: Velodrome, Seed: sched, Atomic: atomic})
			if err != nil {
				t.Fatal(err)
			}
			if len(velo.Violations) == 0 {
				continue
			}
			dc, err := Run(prog, Config{Analysis: DCSingle, Seed: sched, Atomic: atomic})
			if err != nil {
				t.Fatal(err)
			}
			// Union of regular-transaction start seqs across DC's precise
			// cycles (PCD only sees transactions ICD put in SCCs, so this
			// is the filtered set).
			dcTxs := make(map[uint64]bool)
			for _, v := range dc.Violations {
				for _, tx := range v.Cycle {
					if !tx.Unary {
						dcTxs[tx.StartSeq] = true
					}
				}
			}
			for _, v := range velo.Violations {
				for _, tx := range v.Cycle {
					if tx.Unary {
						continue
					}
					if !dcTxs[tx.StartSeq] {
						t.Errorf("seed %d sched %d: velodrome cycle txn (start %d, m%d) missing from single-run cycles",
							seed, sched, tx.StartSeq, tx.Method)
					}
				}
			}
		}
	}
}

// TestPropertyReplayOrdersAgree: PCD's paper-faithful edge-constrained
// replay must find violations exactly when the exact global-clock replay
// does.
func TestPropertyReplayOrdersAgree(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		prog, atomic := genProgram(seed)
		bySeq, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic, ReplayOrder: pcd.BySeq})
		if err != nil {
			t.Fatal(err)
		}
		byEdges, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic, ReplayOrder: pcd.ByEdges})
		if err != nil {
			t.Fatal(err)
		}
		if (len(bySeq.Violations) > 0) != (len(byEdges.Violations) > 0) {
			t.Errorf("seed %d: BySeq %d violations, ByEdges %d",
				seed, len(bySeq.Violations), len(byEdges.Violations))
		}
	}
}

// TestPropertyDeterministicResults: the same configuration twice must yield
// identical results — the foundation of every comparison above.
func TestPropertyDeterministicResults(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog, atomic := genProgram(seed)
		a, err := Run(prog, Config{Analysis: DCSingle, Seed: 7, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(prog, Config{Analysis: DCSingle, Seed: 7, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Violations) != len(b.Violations) || blamedSet(a, prog) != blamedSet(b, prog) {
			t.Errorf("seed %d: nondeterministic results", seed)
		}
	}
}

// TestPropertyPCDOnlyAgreesWithSingleRun: processing every transaction
// instead of only SCC transactions must not change what is found (ICD is a
// sound filter), only what it costs.
func TestPropertyPCDOnlyAgreesWithSingleRun(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog, atomic := genProgram(seed)
		single, err := Run(prog, Config{Analysis: DCSingle, Seed: 2, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		all, err := Run(prog, Config{Analysis: PCDOnly, Seed: 2, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		if (len(single.Violations) > 0) != (len(all.Violations) > 0) {
			t.Errorf("seed %d: single %d vs pcd-only %d violations",
				seed, len(single.Violations), len(all.Violations))
		}
	}
}

// TestPropertyUnsoundVelodromeAgrees: in the deterministic interpreter the
// unsound variant cannot miss dependences, so it must agree exactly.
func TestPropertyUnsoundVelodromeAgrees(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog, atomic := genProgram(seed)
		sound, err := Run(prog, Config{Analysis: Velodrome, Seed: 3, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		unsound, err := Run(prog, Config{Analysis: VelodromeUnsound, Seed: 3, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		if blamedSet(sound, prog) != blamedSet(unsound, prog) {
			t.Errorf("seed %d: sound %v vs unsound %v", seed,
				sound.BlamedMethodNames(prog), unsound.BlamedMethodNames(prog))
		}
	}
}

// TestPropertyCostOrdering: on a realistic workload (mostly thread-local
// accesses, moderate lock-guarded sharing — the shape of the paper's
// benchmarks) the paper's cost shape must hold: baseline < first run <
// single-run < Velodrome (single-run adds logging over the first run;
// Velodrome adds per-access synchronization over everything).
func TestPropertyCostOrdering(t *testing.T) {
	prog, atomic := genMixed()
	costs := make(map[Analysis]cost.Units)
	var base cost.Units
	for _, a := range []Analysis{Baseline, Velodrome, DCSingle, DCFirst} {
		meter := cost.NewMeter(cost.Default())
		if _, err := Run(prog, Config{Analysis: a, Seed: 5, Atomic: atomic, Meter: meter}); err != nil {
			t.Fatal(err)
		}
		costs[a] = meter.Total()
		if a == Baseline {
			base = meter.Total()
		}
	}
	if !(base < costs[DCFirst] && costs[DCFirst] < costs[DCSingle] && costs[DCSingle] < costs[Velodrome]) {
		t.Errorf("cost ordering violated: base=%d first=%d single=%d velo=%d",
			base, costs[DCFirst], costs[DCSingle], costs[Velodrome])
	}
}

// TestXalanPathologyShape: a lock ping-pong workload where every release/
// acquire conflicts produces many overlapping imprecise SCCs that PCD must
// reprocess — the paper's xalan6 case, the one benchmark where Velodrome
// beats single-run mode (§5.3). Assert the mechanism, not the exact ratio:
// ICD reports many SCCs and PCD replays far more transactions than the
// program has.
func TestXalanPathologyShape(t *testing.T) {
	prog, atomic := genContended(11)
	r, err := Run(prog, Config{Analysis: DCSingle, Seed: 5, Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	if r.ICD.SCCs < 10 {
		t.Errorf("expected many imprecise SCCs, got %d", r.ICD.SCCs)
	}
	if r.PCD.TxnsProcessed < 5*r.ICD.SCCs {
		t.Errorf("expected heavy PCD reprocessing: %d txns over %d SCCs",
			r.PCD.TxnsProcessed, r.ICD.SCCs)
	}
	if len(r.Violations) != 0 {
		t.Errorf("properly locked ping-pong has no precise violations, got %d", len(r.Violations))
	}
}

// genMixed builds a benchmark-shaped workload: per thread, long runs of
// thread-local accesses and compute, with occasional lock-guarded shared
// updates.
func genMixed() (*vm.Program, func(vm.MethodID) bool) {
	b := vm.NewBuilder("mixed")
	shared := b.Object()
	lk := b.Object()
	locals := b.Objects(4)
	update := b.Method("update")
	update.Acquire(lk).Read(shared, 0).Write(shared, 0).Release(lk)
	atomicIDs := map[vm.MethodID]bool{update.ID(): true}
	for i := 0; i < 4; i++ {
		local := b.Method(fmt.Sprintf("local%d", i))
		for j := 0; j < 8; j++ {
			local.Read(locals[i], vm.FieldID(j)).Write(locals[i], vm.FieldID(j))
		}
		local.Compute(4)
		atomicIDs[local.ID()] = true
		main := b.Method(fmt.Sprintf("main%d", i))
		for it := 0; it < 40; it++ {
			main.Call(local)
			if it%8 == 0 {
				main.Call(update)
			}
		}
		b.Thread(main)
	}
	prog := b.MustBuild()
	return prog, func(m vm.MethodID) bool { return atomicIDs[m] }
}

// genContended builds the pathological lock ping-pong workload.
func genContended(seed int64) (*vm.Program, func(vm.MethodID) bool) {
	b := vm.NewBuilder("contended")
	o := b.Object()
	lk := b.Object()
	work := b.Method("work")
	work.Acquire(lk)
	for i := 0; i < 10; i++ {
		work.Read(o, vm.FieldID(i)).Write(o, vm.FieldID(i))
	}
	work.Release(lk)
	for i := 0; i < 4; i++ {
		main := b.Method(fmt.Sprintf("main%d", i))
		main.CallN(work, 30)
		b.Thread(main)
	}
	prog := b.MustBuild()
	workID := prog.MethodByName("work").ID
	return prog, func(m vm.MethodID) bool { return m == workID }
}
