package core

import (
	"testing"

	"doublechecker/internal/vm"
)

// TestUnaryObserverImplicatesTransaction documents a subtle — and faithful —
// behavior of Velodrome-style conflict serializability: a NON-atomic
// observer thread that reads two fields around a locked transaction creates
// a cycle through its unary transactions (intra-thread program-order edges
// count as dependences), so the locked transaction itself gets blamed. Both
// checkers must agree on it; this pins the behavior so a future
// "optimization" doesn't silently diverge from the Velodrome semantics the
// paper follows.
func TestUnaryObserverImplicatesTransaction(t *testing.T) {
	b := vm.NewBuilder("bank")
	checking := b.Object()
	savings := b.Object()
	ledger := b.Object()
	transfer := b.Method("transfer")
	transfer.Acquire(ledger).
		Read(checking, 0).Write(checking, 0).
		Read(savings, 0).Write(savings, 0).
		Release(ledger)
	audit := b.Method("audit") // NOT atomic: a plain observer
	audit.Read(checking, 0).Compute(12).Read(savings, 0).Compute(12).Write(checking, 1)
	t0 := b.Method("teller0")
	t0.CallN(transfer, 25)
	t1 := b.Method("teller1")
	t1.CallN(transfer, 25)
	aud := b.Method("auditor")
	for i := 0; i < 12; i++ {
		aud.Call(audit)
		aud.Compute(5)
	}
	b.Thread(t0)
	b.Thread(t1)
	b.Thread(aud)
	prog := b.MustBuild()
	trID := prog.MethodByName("transfer").ID
	atomic := func(m vm.MethodID) bool { return m == trID }

	foundSeed := int64(-1)
	for seed := int64(0); seed < 20; seed++ {
		r, err := Run(prog, Config{Analysis: DCSingle, Seed: seed, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Violations) > 0 {
			foundSeed = seed
			if names := r.BlamedMethodNames(prog); len(names) != 1 || names[0] != "transfer" {
				t.Errorf("seed %d: blamed %v, want [transfer]", seed, names)
			}
			break
		}
	}
	if foundSeed < 0 {
		t.Skip("no schedule interleaved the observer inside a transfer; nothing to assert")
	}
	velo, err := Run(prog, Config{Analysis: Velodrome, Seed: foundSeed, Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	if len(velo.Violations) == 0 {
		t.Error("Velodrome must agree on the same interleaving")
	}
}
