package core

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"doublechecker/internal/spec"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

func replayGolden(t *testing.T, name string) *Result {
	t.Helper()
	d, err := trace.ReadFile(filepath.Join("..", "..", "testdata", "traces", name))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTrace(context.Background(), d, Config{Analysis: DCSingle})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTraceTelemetryDeterministic is the determinism contract's gate: two
// identical replays of the same golden trace must yield byte-identical
// deterministic telemetry JSON (span wall times, the one nondeterministic
// quantity, are stripped).
func TestTraceTelemetryDeterministic(t *testing.T) {
	for _, name := range []string{"elevator.dct", "montecarlo.dct", "hsqldb6.dct"} {
		t.Run(name, func(t *testing.T) {
			a := replayGolden(t, name).Telemetry.Deterministic().JSON()
			b := replayGolden(t, name).Telemetry.Deterministic().JSON()
			if !bytes.Equal(a, b) {
				t.Errorf("replays diverge:\n%s\nvs\n%s", a, b)
			}
			if !strings.Contains(string(a), telemetry.VMSteps) {
				t.Errorf("snapshot missing vm counters:\n%s", a)
			}
		})
	}
}

// TestRunTelemetryPrivateRegistry: with Config.Telemetry nil every run gets
// its own registry, so two runs don't accumulate into each other.
func TestRunTelemetryPrivateRegistry(t *testing.T) {
	a := replayGolden(t, "elevator.dct")
	b := replayGolden(t, "elevator.dct")
	if a.Telemetry.Counter(telemetry.VMFieldAccesses) != b.Telemetry.Counter(telemetry.VMFieldAccesses) {
		t.Errorf("identical replays disagree on field accesses: %d vs %d",
			a.Telemetry.Counter(telemetry.VMFieldAccesses), b.Telemetry.Counter(telemetry.VMFieldAccesses))
	}
	if a.Telemetry.Counter(telemetry.VMFieldAccesses) == 0 {
		t.Error("vm.accesses.field = 0 after a replay")
	}
}

// TestMontecarloTelemetryAcceptance runs the montecarlo workload live under
// single-run mode and checks the pipeline's headline quantities are all
// observed: at least three Octet transition kinds fire, the SCC size
// histogram is non-empty, and the PCD replayed-transaction fraction lands
// in (0, 1].
func TestMontecarloTelemetryAcceptance(t *testing.T) {
	b, err := workloads.Build("montecarlo", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sp := spec.Initial(b.Prog)
	if err := sp.ExcludeByName(b.InitialExclusions...); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	for seed := int64(0); seed < 8; seed++ {
		if _, err := Run(b.Prog, Config{
			Analysis:  DCSingle,
			Sched:     vm.NewSticky(seed, b.Stickiness),
			Atomic:    sp.Atomic,
			Telemetry: reg,
		}); err != nil {
			t.Fatal(err)
		}
		if reg.Snapshot().Gauge(telemetry.PCDTxFraction) > 0 {
			break // an SCC reached PCD; the pipeline is fully exercised
		}
	}
	s := reg.Snapshot()

	kinds := 0
	for _, name := range []string{
		telemetry.OctetFastPath, telemetry.OctetInitial, telemetry.OctetUpgrading,
		telemetry.OctetFence, telemetry.OctetConflicting,
	} {
		if s.Counter(name) > 0 {
			kinds++
		}
	}
	if kinds < 3 {
		t.Errorf("only %d octet transition kinds observed, want >= 3:\n%s", kinds, s.JSON())
	}
	if h, ok := s.Histograms[telemetry.ICDSCCSize]; !ok || h.Count == 0 {
		t.Errorf("SCC size histogram empty:\n%s", s.JSON())
	}
	frac := s.Gauge(telemetry.PCDTxFraction)
	if !(frac > 0 && frac <= 1) {
		t.Errorf("pcd.replayed_tx_fraction = %v, want in (0,1]:\n%s", frac, s.JSON())
	}
}

// TestDiffTraceTelemetry: DiffTrace carries per-checker deterministic
// snapshots so divergences can be localized to a pipeline stage.
func TestDiffTraceTelemetry(t *testing.T) {
	d, err := trace.ReadFile(filepath.Join("..", "..", "testdata", "traces", "hsqldb6.dct"))
	if err != nil {
		t.Fatal(err)
	}
	td, err := DiffTrace(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if td.DCTelemetry == nil || td.VeloTelemetry == nil || td.FirstTelemetry == nil {
		t.Fatal("diff missing per-checker telemetry")
	}
	if td.DCTelemetry.Counter(telemetry.VMFieldAccesses) == 0 {
		t.Error("dc-single snapshot has no field accesses")
	}
	if td.VeloTelemetry.Counter(telemetry.VeloMetadataUpdates) == 0 {
		t.Error("velodrome snapshot has no metadata updates")
	}
	for name, snap := range map[string]interface{ JSON() []byte }{
		"dc": td.DCTelemetry, "velo": td.VeloTelemetry, "first": td.FirstTelemetry,
	} {
		if strings.Contains(string(snap.JSON()), `"wall_ns"`) {
			t.Errorf("%s snapshot not deterministic (has wall_ns)", name)
		}
	}
}
