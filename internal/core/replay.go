// Trace replay: run any checker configuration over a recorded event stream
// with no VM, and diff checkers against each other on a guaranteed
// identical interleaving.

package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"doublechecker/internal/cost"
	"doublechecker/internal/obs"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/trace"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// RunTrace replays a decoded trace through the checker configuration
// selected by cfg — no VM is constructed; the trace's recorded events drive
// the instrumentation directly. The trace's embedded atomicity
// specification is used when cfg.Atomic is nil; cfg.Seed and cfg.Sched are
// ignored (the interleaving is the recorded one). Replay-incompatible
// analyses are rejected: there is nothing to replay for Baseline, and
// filtered second runs are supported like any other configuration.
//
// Result.VMStats is reconstructed from the trace's event counts: the
// event-derived fields (accesses, transactions, thread lifecycle) are
// exact; executor-internal counters (steps, waits, compute units) are zero
// because a trace does not record them.
func RunTrace(ctx context.Context, d *trace.Data, cfg Config) (*Result, error) {
	if cfg.Analysis == Baseline {
		return nil, fmt.Errorf("core: analysis %v does not consume events; nothing to replay", cfg.Analysis)
	}
	if cfg.Atomic == nil {
		cfg.Atomic = d.Header.AtomicSet()
	}
	if cfg.Meter != nil && cfg.MemoryBudget > 0 {
		cfg.Meter.SetBudget(cfg.MemoryBudget)
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	res := &Result{Analysis: cfg.Analysis, BlamedMethods: make(map[vm.MethodID]bool)}
	res.VMStats = statsFromCounts(d.Counts)

	runSpan, ctx := obs.StartSpan(ctx, telemetry.SpanCoreRun)
	runSpan.SetStr("analysis", cfg.Analysis.String())
	defer runSpan.End()

	inst, collect, abort, err := buildAnalysis(ctx, d.Header.Program, cfg, res)
	if err != nil {
		return nil, err
	}
	if cfg.WrapInst != nil {
		inst = cfg.WrapInst(inst)
	}
	span := cfg.Telemetry.StartSpan(telemetry.SpanExecute, cfg.Meter)
	execSpan, _ := obs.StartSpan(ctx, telemetry.SpanExecute)
	var execCost0 cost.Units
	if execSpan.Live() && cfg.Meter != nil {
		execCost0 = cfg.Meter.Total()
	}
	err = trace.Replay(ctx, d, inst)
	span.End()
	if execSpan.Live() {
		execSpan.SetInt("vm.tx.ends", int64(res.VMStats.TxEnds))
		if cfg.Meter != nil {
			execSpan.SetInt("cost_units", int64(cfg.Meter.Total()-execCost0))
		}
	}
	execSpan.End()
	if err != nil {
		abort()
		res.Telemetry = cfg.Telemetry.Snapshot()
		return res, err
	}
	collectSpan, _ := obs.StartSpan(ctx, telemetry.SpanCoreCollect)
	collect()
	collectSpan.End()
	finishResult(res, cfg)
	runSpan.SetInt("violations", int64(len(res.Violations)))
	return res, nil
}

// statsFromCounts lifts a trace's event counts into the vm.Stats shape so
// replayed results report the same access/transaction totals as live ones.
func statsFromCounts(c vm.EventCounts) vm.Stats {
	return vm.Stats{
		FieldAccesses: c.FieldAccesses,
		ArrayAccesses: c.ArrayAccesses,
		SyncAccesses:  c.SyncAccesses,
		RegularTx:     c.TxBegins,
		TxEnds:        c.TxEnds,
		ThreadStarts:  c.ThreadStarts,
		ThreadExits:   c.ThreadExits,
	}
}

// ViolationSignature renders one violation as a stable, comparable string:
// cycle size plus the sorted blamed method names. Two checkers that report
// the same signature multiset on the same trace found the same violations.
func ViolationSignature(v txn.Violation, prog *vm.Program) string {
	names := make([]string, 0, len(v.BlamedMethods))
	for _, m := range v.BlamedMethods {
		names = append(names, prog.MethodName(m))
	}
	sort.Strings(names)
	return fmt.Sprintf("cycle=%d blamed=[%s]", len(v.Cycle), strings.Join(names, ","))
}

// ViolationSignatures renders all of a result's violations, sorted.
func ViolationSignatures(res *Result, prog *vm.Program) []string {
	sigs := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		sigs = append(sigs, ViolationSignature(v, prog))
	}
	sort.Strings(sigs)
	return sigs
}

// BlameSignatures renders a result's violations as the deduplicated, sorted
// set of blamed-method groups — the cross-checker comparison unit. Cycle
// length is deliberately excluded: two sound checkers may thread different
// cycles through the same conflicting transactions (PCD reports the SCC's
// cycle, Velodrome the cycle its edge insertion closed), and Table 2 of the
// paper compares checkers on blamed methods, not cycle shapes.
func BlameSignatures(res *Result, prog *vm.Program) []string {
	set := make(map[string]bool)
	for _, v := range res.Violations {
		names := make([]string, 0, len(v.BlamedMethods))
		for _, m := range v.BlamedMethods {
			names = append(names, prog.MethodName(m))
		}
		sort.Strings(names)
		set["blamed=["+strings.Join(names, ",")+"]"] = true
	}
	sigs := make([]string, 0, len(set))
	for s := range set {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	return sigs
}

// TraceDiff is DiffTrace's verdict: the same interleaving checked by
// DoubleChecker's single-run mode, by Velodrome, and by the ICD-only first
// run, with the violation sets compared.
type TraceDiff struct {
	// Source identifies the trace (Header.Source).
	Source string
	// DC, Velo, and First are the three replayed results (single-run
	// DoubleChecker, Velodrome, ICD-only first run).
	DC    *Result
	Velo  *Result
	First *Result
	// DCViolations and VeloViolations are the sorted full violation
	// signatures (cycle size + blamed methods), for display.
	DCViolations   []string
	VeloViolations []string
	// OnlyDC and OnlyVelo are the blame signatures reported by exactly one
	// checker (see BlameSignatures). Both empty means the checkers agree.
	OnlyDC   []string
	OnlyVelo []string
	// ICDMissed lists methods a precise checker blamed that ICD's
	// imprecise first pass did not flag — each entry is a soundness
	// violation of the ICD over-approximation, so this must stay empty.
	ICDMissed []string
	// DCTelemetry, VeloTelemetry, and FirstTelemetry are the per-checker
	// deterministic telemetry snapshots (span wall times stripped): when the
	// checkers disagree, the divergence report carries each one's pipeline
	// metrics so the disagreement can be localized to a stage.
	DCTelemetry    *telemetry.Snapshot
	VeloTelemetry  *telemetry.Snapshot
	FirstTelemetry *telemetry.Snapshot
}

// Agree reports whether DoubleChecker and Velodrome found exactly the same
// violations and ICD's over-approximation covered everything blamed.
func (td *TraceDiff) Agree() bool {
	return len(td.OnlyDC) == 0 && len(td.OnlyVelo) == 0 && len(td.ICDMissed) == 0
}

// Summary renders the verdict in one line.
func (td *TraceDiff) Summary() string {
	if td.Agree() {
		return fmt.Sprintf("agree: %d violation(s)", len(td.DCViolations))
	}
	return fmt.Sprintf("DISAGREE: only-dc=%d only-velodrome=%d icd-missed=%d",
		len(td.OnlyDC), len(td.OnlyVelo), len(td.ICDMissed))
}

// DiffTrace replays one trace through single-run DoubleChecker, Velodrome,
// and the ICD-only first run, and diffs what they found. Because all three
// consume the identical recorded interleaving, any difference is a checker
// discrepancy, not schedule nondeterminism — this is the differential
// harness the trace format exists to make possible.
func DiffTrace(ctx context.Context, d *trace.Data) (*TraceDiff, error) {
	prog := d.Header.Program
	dc, err := RunTrace(ctx, d, Config{Analysis: DCSingle})
	if err != nil {
		return nil, fmt.Errorf("dc-single replay: %w", err)
	}
	velo, err := RunTrace(ctx, d, Config{Analysis: Velodrome})
	if err != nil {
		return nil, fmt.Errorf("velodrome replay: %w", err)
	}
	first, err := RunTrace(ctx, d, Config{Analysis: DCFirst})
	if err != nil {
		return nil, fmt.Errorf("dc-first replay: %w", err)
	}
	td := &TraceDiff{
		Source:         d.Header.Source,
		DC:             dc,
		Velo:           velo,
		First:          first,
		DCViolations:   ViolationSignatures(dc, prog),
		VeloViolations: ViolationSignatures(velo, prog),
		DCTelemetry:    dc.Telemetry.Deterministic(),
		VeloTelemetry:  velo.Telemetry.Deterministic(),
		FirstTelemetry: first.Telemetry.Deterministic(),
	}
	td.OnlyDC, td.OnlyVelo = diffMultisets(BlameSignatures(dc, prog), BlameSignatures(velo, prog))

	// Soundness containment: every method blamed by a precise checker must
	// appear in ICD's static over-approximation.
	blamed := make(map[vm.MethodID]bool)
	for m := range dc.BlamedMethods {
		blamed[m] = true
	}
	for m := range velo.BlamedMethods {
		blamed[m] = true
	}
	for m := range blamed {
		if _, ok := first.StaticMethods[m]; !ok {
			td.ICDMissed = append(td.ICDMissed, prog.MethodName(m))
		}
	}
	sort.Strings(td.ICDMissed)
	return td, nil
}

// diffMultisets returns the elements of a not matched in b and vice versa;
// both inputs must be sorted.
func diffMultisets(a, b []string) (onlyA, onlyB []string) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			onlyA = append(onlyA, a[i])
			i++
		default:
			onlyB = append(onlyB, b[j])
			j++
		}
	}
	onlyA = append(onlyA, a[i:]...)
	onlyB = append(onlyB, b[j:]...)
	return onlyA, onlyB
}

// RecordConfig configures RecordRun: one live checked execution teed into a
// trace writer.
type RecordConfig struct {
	// Config is the checker configuration for the live run (Baseline
	// records without checking).
	Config
	// Source is stored in the trace header (free-form provenance note).
	Source string
}

// RecordRun executes prog once under rc, recording the full event stream
// into w alongside whatever analysis rc selects. It verifies recorder
// completeness — every event the executor emitted was written — and closes
// the trace writer (not the underlying file). The returned Result is the
// live run's.
func RecordRun(ctx context.Context, prog *vm.Program, w *trace.Writer, rc RecordConfig) (*Result, error) {
	var rec *trace.Recorder
	prev := rc.WrapInst
	rc.WrapInst = func(inner vm.Instrumentation) vm.Instrumentation {
		if prev != nil {
			inner = prev(inner)
		}
		rec = trace.NewRecorder(w, inner)
		return rec
	}
	res, err := RunContext(ctx, prog, rc.Config)
	if err != nil {
		return res, err
	}
	if got, want := rec.Counts(), res.VMStats.Events(); got != want {
		return res, fmt.Errorf("core: recorder incomplete: recorded {%v}, executor emitted {%v}", got, want)
	}
	if err := w.Close(); err != nil {
		return res, fmt.Errorf("core: finalize trace: %w", err)
	}
	return res, nil
}
