// Package core assembles the checkers into the configurations the paper
// evaluates: the Velodrome baseline (sound and unsound variants),
// DoubleChecker's single-run mode (ICD+PCD over one execution), the first
// run of multi-run mode (ICD only, no logging), the second run of multi-run
// mode (ICD+PCD restricted to the first run's static transaction
// information), Velodrome as a second run, and the PCD-only straw man
// (§5.4). It is the public surface the command-line tools, examples, and
// the evaluation harness drive.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"doublechecker/internal/cost"
	"doublechecker/internal/icd"
	"doublechecker/internal/obs"
	"doublechecker/internal/pcd"
	"doublechecker/internal/telemetry"
	"doublechecker/internal/txn"
	"doublechecker/internal/velodrome"
	"doublechecker/internal/vm"
)

// Analysis selects which checker configuration to attach to the execution.
type Analysis int

const (
	// Baseline runs the program uninstrumented (the "Unmodified Jikes RVM"
	// bar of Figure 7).
	Baseline Analysis = iota
	// Velodrome is the sound and precise baseline checker.
	Velodrome
	// VelodromeUnsound is the no-sync-when-unchanged variant (§5.3).
	VelodromeUnsound
	// DCSingle is DoubleChecker's single-run mode: ICD with logging + PCD.
	DCSingle
	// DCFirst is the first run of multi-run mode: ICD only, no logging.
	DCFirst
	// DCSecond is the second run of multi-run mode: ICD+PCD restricted by
	// the first run's static transaction information.
	DCSecond
	// VeloSecond runs Velodrome restricted by first-run output (§5.3
	// compares this against DCSecond).
	VeloSecond
	// PCDOnly is the §5.4 straw man: logging ICD, but PCD processes every
	// transaction instead of only ICD's SCCs.
	PCDOnly
)

var analysisNames = map[Analysis]string{
	Baseline:         "baseline",
	Velodrome:        "velodrome",
	VelodromeUnsound: "velodrome-unsound",
	DCSingle:         "dc-single",
	DCFirst:          "dc-first",
	DCSecond:         "dc-second",
	VeloSecond:       "velodrome-second",
	PCDOnly:          "pcd-only",
}

func (a Analysis) String() string {
	if s, ok := analysisNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Analysis(%d)", int(a))
}

// ParseAnalysis converts a CLI name to an Analysis.
func ParseAnalysis(s string) (Analysis, error) {
	for a, name := range analysisNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown analysis %q", s)
}

// Config configures one checked execution.
type Config struct {
	// Analysis selects the checker configuration.
	Analysis Analysis
	// Seed drives the default scheduler; distinct seeds model the paper's
	// run-to-run nondeterminism.
	Seed int64
	// Sched overrides the scheduler (default: vm.NewRandom(Seed)).
	Sched vm.Scheduler
	// Atomic is the atomicity specification predicate.
	Atomic func(vm.MethodID) bool
	// Filter carries the first run's static transaction information into
	// DCSecond / VeloSecond; ignored by other analyses.
	Filter *txn.Filter
	// Meter, if non-nil, accumulates modelled cost; required for
	// performance experiments, optional for correctness runs.
	Meter *cost.Meter
	// ReplayOrder selects PCD's replay strategy (default BySeq).
	ReplayOrder pcd.ReplayOrder
	// InstrumentArrays enables array instrumentation with element
	// conflation and disables cycle detection (§5.4; Velodrome analyses
	// only — the base experiment excludes arrays everywhere).
	InstrumentArrays bool
	// DisableCycleDetection turns off cycle/SCC detection without touching
	// instrumentation — the §5.4 array experiment compares both of its
	// configurations with detection off.
	DisableCycleDetection bool
	// GCPeriod overrides the checkers' transaction-GC period.
	GCPeriod uint64
	// MaxSteps bounds the execution (0: vm default).
	MaxSteps uint64

	// NoElision, NoUnaryMerge and EagerDetect are ablation knobs for the
	// paper's design choices (log duplicate elision, unary-transaction
	// merging, deferred cycle detection); see eval's ablation experiment.
	NoElision    bool
	NoUnaryMerge bool
	EagerDetect  bool
	// ParallelPCD models the paper's §5.3 suggestion of running PCD off
	// the critical path: PCD's cost is charged to a separate meter
	// reported via Result.OffCritical instead of the main meter.
	ParallelPCD bool
	// PCDWorkers makes §5.3's suggestion real: values ≥ 2 replay SCCs on
	// that many concurrent worker goroutines (internal/pcd's pool), handed
	// off at ICD's SCC-discovery point and merged deterministically at the
	// end of the run — findings, stats, and the deterministic telemetry
	// snapshot are byte-identical to the serial path for any worker count.
	// 0 or 1 keeps the serial in-line replay. A pooled run charges PCD to
	// per-SCC off-critical-path meters (ParallelPCD-style accounting is
	// implied; only the hand-off snapshot stays on the main meter). PCDOnly
	// ignores it: the straw man replays everything at program end, after
	// the event stream — there is no discovery-time hand-off to move off
	// the critical path.
	PCDWorkers int
	// PCDPoolHook, if non-nil, runs on a pool worker just before each SCC
	// replay (PCDWorkers ≥ 2 only); a panic in it is quarantined to that
	// SCC like a checker panic. It is the pool-side deterministic
	// fault-injection seam, WrapInst's counterpart.
	PCDPoolHook func(index uint64, scc []*txn.Txn)
	// VelodromeIncremental selects the Pearce–Kelly incremental cycle
	// engine for Velodrome analyses (an extension beyond the paper; exact
	// same findings, less graph work).
	VelodromeIncremental bool
	// ICDEngine selects ICD's deferred-detection engine. The zero value is
	// icd.EngineIncremental (the amortized condensation); icd.EngineScan
	// keeps the full per-finish walk for ablation. Findings and reports are
	// byte-identical either way (the crosscheck harness enforces it).
	ICDEngine icd.Engine
	// MemoryBudget, when positive and a Meter is attached, marks the run
	// out-of-memory once live analysis bytes exceed it — the 32-bit heap
	// phenomenon of §5.1 (the run continues; Result.Cost.OOM reports it).
	MemoryBudget int64

	// WrapInst, if non-nil, wraps the analysis' instrumentation just before
	// execution. It is the deterministic fault-injection seam (see
	// internal/faultinject) and is also useful for passive observers; it
	// must preserve the event stream it forwards.
	WrapInst func(vm.Instrumentation) vm.Instrumentation

	// Telemetry, if non-nil, receives every pipeline metric of the run: the
	// Octet transition mix, IDG/SCC statistics, PCD replay counters, the
	// Velodrome baseline's work, the phase spans, and the end-of-run VM and
	// cost summaries. A shared registry accumulates across runs (that is how
	// dcheck's -metrics-addr endpoint reports a whole session); when nil, a
	// private registry is created per run so Result.Telemetry is always
	// populated.
	Telemetry *telemetry.Registry
}

// Result reports one checked execution.
type Result struct {
	Analysis   Analysis
	Violations []txn.Violation
	// BlamedMethods is the union of blamed methods across violations —
	// the "static violations" Table 2 counts.
	BlamedMethods map[vm.MethodID]bool

	VMStats  vm.Stats
	Cost     cost.Report
	BaseCost cost.Units // program-only cost (filled by harness when known)

	// Checker-specific statistics (zero-valued when not applicable).
	ICD  icd.Stats
	PCD  pcd.Stats
	Velo velodrome.Stats
	Txn  txn.Stats

	// StaticMethods and StaticUnary are the first run's output (DCFirst;
	// also populated by DCSingle/DCSecond since ICD computes them anyway).
	// The map value counts how many imprecise SCCs the method's
	// transactions appeared in.
	StaticMethods map[vm.MethodID]int
	StaticUnary   bool

	// OffCritical is the modelled cost moved off the program's critical
	// path by ParallelPCD or a PCDWorkers pool (zero otherwise).
	OffCritical cost.Report
	// OffCriticalPathCost is OffCritical.Total: the headline units of PCD
	// work that did not delay the program, the quantity §5.3's
	// off-critical-path argument is about. Both the serial ParallelPCD
	// path and the PCDWorkers pool charge PCD replay here consistently.
	OffCriticalPathCost cost.Units
	// PCDQuarantined lists per-SCC worker panics the PCD pool absorbed
	// without losing the run (empty for serial runs and healthy pools).
	PCDQuarantined []pcd.Quarantine

	// Telemetry is the run's metric snapshot (never nil after a successful
	// run). When Config.Telemetry was shared across runs the snapshot is
	// cumulative; Snapshot.Deterministic strips the only nondeterministic
	// fields (span wall times) for byte-stable comparison.
	Telemetry *telemetry.Snapshot
}

// BlamedMethodNames resolves blamed methods against prog, sorted.
func (r *Result) BlamedMethodNames(prog *vm.Program) []string {
	names := make([]string, 0, len(r.BlamedMethods))
	for m := range r.BlamedMethods {
		names = append(names, prog.MethodName(m))
	}
	sort.Strings(names)
	return names
}

// Run executes prog once under cfg and returns the result.
func Run(prog *vm.Program, cfg Config) (*Result, error) {
	return RunContext(context.Background(), prog, cfg)
}

// RunContext is Run under a context: cancellation or an expired deadline
// aborts the execution promptly, surfacing the context's error.
func RunContext(ctx context.Context, prog *vm.Program, cfg Config) (*Result, error) {
	sched := cfg.Sched
	if sched == nil {
		sched = vm.NewRandom(cfg.Seed)
	}
	if cfg.Meter != nil && cfg.MemoryBudget > 0 {
		cfg.Meter.SetBudget(cfg.MemoryBudget)
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	res := &Result{Analysis: cfg.Analysis, BlamedMethods: make(map[vm.MethodID]bool)}

	runSpan, ctx := obs.StartSpan(ctx, telemetry.SpanCoreRun)
	runSpan.SetStr("analysis", cfg.Analysis.String())
	defer runSpan.End()

	inst, collect, abort, err := buildAnalysis(ctx, prog, cfg, res)
	if err != nil {
		return nil, err
	}

	if cfg.WrapInst != nil {
		inst = cfg.WrapInst(inst)
	}
	span := cfg.Telemetry.StartSpan(telemetry.SpanExecute, cfg.Meter)
	execSpan, _ := obs.StartSpan(ctx, telemetry.SpanExecute)
	var execCost0 cost.Units
	if execSpan.Live() && cfg.Meter != nil {
		execCost0 = cfg.Meter.Total()
	}
	stats, err := vm.NewExec(prog, vm.Config{
		Sched:    sched,
		Inst:     inst,
		Atomic:   cfg.Atomic,
		Meter:    cfg.Meter,
		MaxSteps: cfg.MaxSteps,
	}).RunContext(ctx)
	span.End()
	if execSpan.Live() {
		if stats != nil {
			execSpan.SetInt("vm.steps", int64(stats.Steps))
			execSpan.SetInt("vm.tx.ends", int64(stats.TxEnds))
		}
		if cfg.Meter != nil {
			execSpan.SetInt("cost_units", int64(cfg.Meter.Total()-execCost0))
		}
	}
	execSpan.End()
	if stats != nil {
		res.VMStats = *stats
	}
	if err != nil {
		abort()
		res.Telemetry = cfg.Telemetry.Snapshot()
		return res, err
	}
	collectSpan, _ := obs.StartSpan(ctx, telemetry.SpanCoreCollect)
	collect()
	collectSpan.End()
	finishResult(res, cfg)
	runSpan.SetInt("violations", int64(len(res.Violations)))
	return res, nil
}

// finishResult derives the cross-analysis summary fields after collect:
// the union of blamed methods, the meter's report, and the telemetry
// snapshot.
func finishResult(res *Result, cfg Config) {
	for _, v := range res.Violations {
		for _, m := range v.BlamedMethods {
			res.BlamedMethods[m] = true
		}
	}
	res.OffCriticalPathCost = res.OffCritical.Total
	if cfg.Meter != nil {
		res.Cost = cfg.Meter.Report()
	}
	if cfg.Telemetry != nil {
		publishRunTelemetry(cfg.Telemetry, res)
		res.Telemetry = cfg.Telemetry.Snapshot()
	}
}

// publishRunTelemetry pushes the end-of-run summary quantities into the
// registry: the VM's ground-truth totals (counters: they accumulate when the
// registry is shared across runs) and latest-run summary gauges (aborted
// transactions, modelled cost, PCD's replayed-transaction fraction).
func publishRunTelemetry(reg *telemetry.Registry, res *Result) {
	s := &res.VMStats
	reg.Counter(telemetry.VMSteps).Add(s.Steps)
	reg.Counter(telemetry.VMFieldAccesses).Add(s.FieldAccesses)
	reg.Counter(telemetry.VMArrayAccesses).Add(s.ArrayAccesses)
	reg.Counter(telemetry.VMSyncAccesses).Add(s.SyncAccesses)
	reg.Counter(telemetry.VMRegularTx).Add(s.RegularTx)
	reg.Counter(telemetry.VMTxEnds).Add(s.TxEnds)
	reg.Gauge(telemetry.VMAbortedTx).Set(float64(s.AbortedTx()))
	reg.Gauge(telemetry.CostTotal).Set(float64(res.Cost.Total))
	reg.Gauge(telemetry.CostGC).Set(float64(res.Cost.GC))
	reg.Gauge(telemetry.CostPeak).Set(float64(res.Cost.PeakBytes))
	if res.Cost.OOM {
		reg.Gauge(telemetry.CostOOM).Set(1)
	}
	// Fraction of this run's transactions that ICD sent to PCD (distinct;
	// SCCs can re-report members). In (0,1] whenever PCD replayed anything.
	if denom := res.Txn.RegularTxns + res.Txn.UnaryTxns; denom > 0 && res.PCD.DistinctTxns > 0 {
		reg.Gauge(telemetry.PCDTxFraction).Set(float64(res.PCD.DistinctTxns) / float64(denom))
	}
}

// buildAnalysis assembles the checker configuration selected by cfg into an
// instrumentation plus a collect closure that harvests its findings into
// res once the event stream ends, and an abort closure the error path must
// call so background resources (the PCD worker pool) never outlive a failed
// run. It is shared by the live execution path (RunContext) and the trace
// replay path (RunTrace): both drive the same instrumentation, one from a
// VM, one from a file. ctx bounds collect-time draining of the pool.
func buildAnalysis(ctx context.Context, prog *vm.Program, cfg Config, res *Result) (vm.Instrumentation, func(), func(), error) {
	var inst vm.Instrumentation
	var collect func()
	abort := func() {}

	// The checkers have no context of their own (they sit behind the VM's
	// instrumentation callbacks), so the current span is handed to them as
	// a parent handle: their phase spans become children of core.run.
	tspan := obs.SpanFromContext(ctx)

	switch cfg.Analysis {
	case Baseline:
		inst = vm.NopInst{}
		collect = func() {}

	case Velodrome, VelodromeUnsound, VeloSecond:
		opts := velodrome.Options{
			Unsound:           cfg.Analysis == VelodromeUnsound,
			InstrumentArrays:  cfg.InstrumentArrays,
			GCPeriod:          cfg.GCPeriod,
			IncrementalCycles: cfg.VelodromeIncremental,
			Telemetry:         cfg.Telemetry,
			TraceSpan:         tspan,
		}
		if cfg.InstrumentArrays || cfg.DisableCycleDetection {
			opts.DisableCycleDetection = true
		}
		if cfg.Analysis == VeloSecond {
			opts.Filter = cfg.Filter
		}
		v := velodrome.NewChecker(prog, cfg.Meter, opts)
		inst = v
		collect = func() {
			res.Violations = v.Violations()
			res.Velo = v.Stats()
			res.Txn = v.TxnStats()
		}

	case DCSingle, DCFirst, DCSecond, PCDOnly:
		var p *pcd.Checker
		logging := cfg.Analysis != DCFirst
		opts := icd.Options{Logging: logging, GCPeriod: cfg.GCPeriod, Engine: cfg.ICDEngine, Telemetry: cfg.Telemetry, TraceSpan: tspan}
		if cfg.InstrumentArrays {
			opts.InstrumentArrays = true
			opts.DisableSCC = true
		}
		if cfg.DisableCycleDetection {
			opts.DisableSCC = true
		}
		if cfg.Analysis == DCSecond {
			opts.Filter = cfg.Filter
		}
		if cfg.Analysis == PCDOnly {
			// The straw man replays everything at program end; ICD's SCCs
			// are ignored, and GC must be effectively off so logs survive,
			// which is exactly why the paper's PCD-only runs exhaust
			// memory.
			opts.GCPeriod = 1 << 62
		}
		opts.NoElision = cfg.NoElision
		opts.NoUnaryMerge = cfg.NoUnaryMerge
		opts.EagerDetect = cfg.EagerDetect
		usePool := cfg.PCDWorkers >= 2 && logging && cfg.Analysis != PCDOnly
		var pcdMeter = cfg.Meter
		var offMeter *cost.Meter
		if cfg.ParallelPCD && cfg.Meter != nil && !usePool {
			// Serial off-critical-path modelling: PCD replays on its own
			// meter, under the same memory budget as the main meter — a
			// giant SCC's replay spike must hit the modelled heap limit
			// whether or not it delays the program.
			offMeter = cost.NewMeter(cfg.Meter.Model())
			if cfg.MemoryBudget > 0 {
				offMeter.SetBudget(cfg.MemoryBudget)
			}
			pcdMeter = offMeter
		}
		var pool *pcd.Pool
		if logging && cfg.Analysis != PCDOnly {
			if usePool {
				pool = pcd.NewPool(pcd.PoolConfig{
					Workers:   cfg.PCDWorkers,
					Order:     cfg.ReplayOrder,
					MainMeter: cfg.Meter,
					Budget:    cfg.MemoryBudget,
					Telemetry: cfg.Telemetry,
					Hook:      cfg.PCDPoolHook,
					TraceSpan: tspan,
				})
				opts.OnSCC = pool.Submit
				abort = pool.Abort
			} else {
				p = pcd.NewChecker(pcdMeter, cfg.ReplayOrder)
				p.SetTelemetry(cfg.Telemetry)
				p.SetTraceSpan(tspan)
				opts.OnSCC = func(scc []*txn.Txn) { p.Process(scc) }
			}
		}
		ic := icd.NewChecker(prog, cfg.Meter, opts)
		if cfg.Analysis == PCDOnly {
			p = pcd.NewChecker(pcdMeter, cfg.ReplayOrder)
			p.SetTelemetry(cfg.Telemetry)
			p.SetTraceSpan(tspan)
		}
		inst = ic
		collect = func() {
			res.ICD = ic.Stats()
			res.Txn = ic.TxnStats()
			if cfg.Analysis == PCDOnly {
				p.Process(ic.Manager().All())
			}
			if pool != nil {
				merged := pool.Drain(ctx)
				res.Violations = merged.Violations
				res.PCD = merged.Stats
				res.OffCritical = merged.OffCritical
				res.PCDQuarantined = merged.Quarantined
			} else if p != nil {
				res.Violations = p.Violations()
				res.PCD = p.Stats()
			}
			res.StaticMethods, res.StaticUnary = ic.StaticInfo()
			if offMeter != nil {
				res.OffCritical = offMeter.Report()
			}
		}

	default:
		return nil, nil, nil, fmt.Errorf("core: unknown analysis %v", cfg.Analysis)
	}

	return inst, collect, abort, nil
}

// UnionFilter merges the static transaction information of several first
// runs into the filter for a second run (§5.1: "we execute 10 trials of the
// first run, take the union of the transactions reported as part of ICD
// cycles, and use it as input for the second run").
func UnionFilter(firsts []*Result) *txn.Filter {
	return UnionFilterMinSupport(firsts, 1)
}

// UnionFilterMinSupport is UnionFilter with a support threshold: a method
// joins the filter only if its transactions appeared in at least minSupport
// imprecise SCCs summed across the first runs. minSupport 1 is the paper's
// behavior; higher values implement its future-work suggestion of
// communicating potentially imprecise cycles more precisely, trading
// second-run coverage for less instrumentation.
func UnionFilterMinSupport(firsts []*Result, minSupport int) *txn.Filter {
	counts := make(map[vm.MethodID]int)
	unary := false
	for _, r := range firsts {
		for m, n := range r.StaticMethods {
			counts[m] += n
		}
		if r.StaticUnary {
			unary = true
		}
	}
	f := &txn.Filter{Methods: make(map[vm.MethodID]bool), Unary: unary}
	for m, n := range counts {
		if n >= minSupport {
			f.Methods[m] = true
		}
	}
	if len(f.Methods) == 0 {
		f.Unary = false // nothing monitored: skip unary instrumentation too
	}
	return f
}

// FirstRunFailure records one first run the multi-run pipeline tolerated
// losing: the first runs are an ensemble, so losing some of them shrinks the
// second run's filter but does not invalidate the pipeline.
type FirstRunFailure struct {
	// Index is the first run's position in the ensemble.
	Index int
	// Seed is the failing run's schedule seed.
	Seed int64
	// Err is the underlying error (errors.Is sees through it).
	Err error
}

// MultiRunOutcome is MultiRunContext's result.
type MultiRunOutcome struct {
	// Firsts holds the successful first runs, in seed order.
	Firsts []*Result
	// FirstFailures records the first runs that failed and were tolerated.
	FirstFailures []FirstRunFailure
	// Second is the filtered second run's result.
	Second *Result
}

// MultiRun executes the full multi-run pipeline: firstTrials first runs
// (seeds seedBase..seedBase+firstTrials-1), union of their static
// information, then one second run with seed secondSeed. Meters, if
// wanted, must be attached per run by the caller via the returned configs —
// this helper targets correctness flows; the evaluation harness drives the
// runs itself for cost accounting.
//
// Individual first-run failures are tolerated (the survivors' union feeds
// the second run); it errors only when every first run fails, when the
// second run fails, or on cancellation. MultiRunContext additionally
// reports which first runs were lost.
func MultiRun(prog *vm.Program, atomic func(vm.MethodID) bool, firstTrials int, seedBase, secondSeed int64) (firsts []*Result, second *Result, err error) {
	o, err := MultiRunContext(context.Background(), prog, atomic, firstTrials, seedBase, secondSeed)
	return o.Firsts, o.Second, err
}

// MultiRunContext is MultiRun under a context; see MultiRun for the
// pipeline and failure-tolerance semantics.
func MultiRunContext(ctx context.Context, prog *vm.Program, atomic func(vm.MethodID) bool, firstTrials int, seedBase, secondSeed int64) (*MultiRunOutcome, error) {
	o := &MultiRunOutcome{}
	var firstErrs []error
	for i := 0; i < firstTrials; i++ {
		seed := seedBase + int64(i)
		r, err := RunContext(ctx, prog, Config{
			Analysis: DCFirst,
			Seed:     seed,
			Atomic:   atomic,
		})
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation is a whole-pipeline abort, not a lost run.
				return o, fmt.Errorf("first run %d: %w", i, err)
			}
			o.FirstFailures = append(o.FirstFailures, FirstRunFailure{Index: i, Seed: seed, Err: err})
			firstErrs = append(firstErrs, fmt.Errorf("first run %d (seed %d): %w", i, seed, err))
			continue
		}
		o.Firsts = append(o.Firsts, r)
	}
	if len(o.Firsts) == 0 && firstTrials > 0 {
		return o, fmt.Errorf("core: all %d first runs failed: %w", firstTrials, errors.Join(firstErrs...))
	}
	second, err := RunContext(ctx, prog, Config{
		Analysis: DCSecond,
		Seed:     secondSeed,
		Atomic:   atomic,
		Filter:   UnionFilter(o.Firsts),
	})
	o.Second = second
	if err != nil {
		return o, fmt.Errorf("second run: %w", err)
	}
	return o, nil
}
