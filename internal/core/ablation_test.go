package core

import (
	"testing"

	"doublechecker/internal/cost"
	"doublechecker/internal/txn"
	"doublechecker/internal/vm"
)

// ablationProg: one racy method plus unary-heavy and log-heavy structure so
// every knob has something to move.
func ablationProg() (*vm.Program, func(vm.MethodID) bool) {
	b := vm.NewBuilder("abl")
	o := b.Object()
	local := b.Object()
	inc := b.Method("inc")
	inc.Read(o, 0).Read(o, 0).Compute(4).Write(o, 0).Write(o, 0)
	for i := 0; i < 2; i++ {
		main := b.Method([]string{"main0", "main1"}[i])
		for j := 0; j < 15; j++ {
			main.Call(inc)
			// Non-transactional run with duplicate accesses.
			main.Read(local, 0).Read(local, 0).Write(local, 1).Write(local, 1)
		}
		b.Thread(main)
	}
	prog := b.MustBuild()
	incID := prog.MethodByName("inc").ID
	return prog, func(m vm.MethodID) bool { return m == incID }
}

func runAbl(t *testing.T, mut func(*Config)) (*Result, cost.Units) {
	t.Helper()
	prog, atomic := ablationProg()
	meter := cost.NewMeter(cost.Default())
	cfg := Config{Analysis: DCSingle, Seed: 3, Atomic: atomic, Meter: meter}
	if mut != nil {
		mut(&cfg)
	}
	r, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, meter.Total()
}

func TestAblationNoElision(t *testing.T) {
	ref, refCost := runAbl(t, nil)
	noEl, cost2 := runAbl(t, func(c *Config) { c.NoElision = true })
	if noEl.Txn.LogElided != 0 {
		t.Errorf("elision disabled but %d elided", noEl.Txn.LogElided)
	}
	if noEl.Txn.LogEntries <= ref.Txn.LogEntries {
		t.Errorf("log entries should grow: %d vs %d", noEl.Txn.LogEntries, ref.Txn.LogEntries)
	}
	if cost2 <= refCost {
		t.Errorf("disabling elision should cost more: %d vs %d", cost2, refCost)
	}
	// And it must not change what is found.
	if len(ref.Violations) == 0 || (len(ref.Violations) > 0) != (len(noEl.Violations) > 0) {
		t.Errorf("elision must not affect detection: %d vs %d violations",
			len(ref.Violations), len(noEl.Violations))
	}
}

func TestAblationNoUnaryMerge(t *testing.T) {
	ref, _ := runAbl(t, nil)
	noMerge, _ := runAbl(t, func(c *Config) { c.NoUnaryMerge = true })
	if noMerge.Txn.UnaryTxns <= ref.Txn.UnaryTxns {
		t.Errorf("unary txns should multiply: %d vs %d",
			noMerge.Txn.UnaryTxns, ref.Txn.UnaryTxns)
	}
	if (len(ref.Violations) > 0) != (len(noMerge.Violations) > 0) {
		t.Errorf("merging must not affect detection: %d vs %d violations",
			len(ref.Violations), len(noMerge.Violations))
	}
}

func TestAblationEagerDetect(t *testing.T) {
	ref, refCost := runAbl(t, nil)
	eager, eagerCost := runAbl(t, func(c *Config) { c.EagerDetect = true })
	if eager.ICD.EagerChecks == 0 {
		t.Error("eager checks should run")
	}
	if ref.ICD.EagerChecks != 0 {
		t.Error("reference must not run eager checks")
	}
	if eagerCost <= refCost {
		t.Errorf("eager detection should cost more: %d vs %d", eagerCost, refCost)
	}
	if (len(ref.Violations) > 0) != (len(eager.Violations) > 0) {
		t.Error("eager detection is additive; findings must not change")
	}
}

func TestAblationParallelPCD(t *testing.T) {
	ref, refCost := runAbl(t, nil)
	par, parCost := runAbl(t, func(c *Config) { c.ParallelPCD = true })
	if par.OffCritical.Total == 0 {
		t.Error("parallel PCD should report off-critical cost")
	}
	if ref.OffCritical.Total != 0 {
		t.Error("reference must not report off-critical cost")
	}
	if parCost >= refCost {
		t.Errorf("parallel PCD should reduce critical-path cost: %d vs %d", parCost, refCost)
	}
	if (len(ref.Violations) > 0) != (len(par.Violations) > 0) {
		t.Error("parallel PCD must not change findings")
	}
}

func TestUnionFilterMinSupport(t *testing.T) {
	mk := func(counts map[vm.MethodID]int, unary bool) *Result {
		return &Result{StaticMethods: counts, StaticUnary: unary}
	}
	firsts := []*Result{
		mk(map[vm.MethodID]int{1: 2, 2: 1}, false),
		mk(map[vm.MethodID]int{1: 3}, true),
	}
	f1 := UnionFilterMinSupport(firsts, 1)
	if !f1.Methods[1] || !f1.Methods[2] || !f1.Unary {
		t.Errorf("support 1: %+v", f1)
	}
	f4 := UnionFilterMinSupport(firsts, 4)
	if !f4.Methods[1] || f4.Methods[2] {
		t.Errorf("support 4 should keep only method 1: %+v", f4)
	}
	f9 := UnionFilterMinSupport(firsts, 9)
	if len(f9.Methods) != 0 || f9.Unary {
		t.Errorf("support 9 should select nothing (incl. unary): %+v", f9)
	}
	// UnionFilter is the support-1 special case.
	u := UnionFilter(firsts)
	if len(u.Methods) != len(f1.Methods) || u.Unary != f1.Unary {
		t.Error("UnionFilter must equal min-support 1")
	}
}

// TestMemoryBudgetOOM reproduces the paper's out-of-memory phenomenon
// (§5.1): with a small budget, the PCD-only straw man — which retains every
// log — trips the OOM marker, while the ICD-filtered single-run mode under
// the same budget does not.
func TestMemoryBudgetOOM(t *testing.T) {
	// A long mostly-serial run: single-run mode's reachability GC keeps the
	// live set small, while the straw man retains every log.
	b := vm.NewBuilder("oom")
	o := b.Object()
	work := b.Method("work")
	for i := 0; i < 8; i++ {
		work.Read(o, vm.FieldID(i)).Write(o, vm.FieldID(i))
	}
	for i := 0; i < 2; i++ {
		main := b.Method([]string{"m0", "m1"}[i])
		main.CallN(work, 300)
		b.Thread(main)
	}
	prog := b.MustBuild()
	workID := prog.MethodByName("work").ID
	atomic := func(m vm.MethodID) bool { return m == workID }

	const budget = 64 * 1024
	run := func(a Analysis) bool {
		meter := cost.NewMeter(cost.Default())
		r, err := Run(prog, Config{
			Analysis: a, Seed: 3, Atomic: atomic,
			Meter: meter, MemoryBudget: budget, GCPeriod: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Cost.OOM
	}
	if !run(PCDOnly) {
		t.Error("PCD-only should exceed the budget (it retains every log)")
	}
	if run(DCSingle) {
		t.Error("single-run mode should stay within the same budget (GC reclaims logs)")
	}
}

// TestVelodromeIncrementalConfig smoke-tests the knob through core.
func TestVelodromeIncrementalConfig(t *testing.T) {
	prog, atomic := ablationProg()
	dfs, err := Run(prog, Config{Analysis: Velodrome, Seed: 4, Atomic: atomic})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Run(prog, Config{Analysis: Velodrome, Seed: 4, Atomic: atomic, VelodromeIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(dfs.Violations) != len(inc.Violations) {
		t.Errorf("engines disagree: %d vs %d", len(dfs.Violations), len(inc.Violations))
	}
}

// TestUnaryOnlyFilterSecondRun exercises the paper's conditional unary
// instrumentation corner: a filter selecting no methods but flagging unary
// accesses — the second run then watches only non-transactional code.
func TestUnaryOnlyFilterSecondRun(t *testing.T) {
	b := vm.NewBuilder("unaryonly")
	o := b.Object()
	safe := b.Method("safe") // atomic but never racy (thread-local objects)
	localA := b.Object()
	safe.Read(localA, 0).Write(localA, 0)
	m0 := b.Method("main0")
	m0.CallN(safe, 5)
	// Racy unary accesses on o.
	for i := 0; i < 10; i++ {
		m0.Read(o, 0).Write(o, 0)
	}
	m1 := b.Method("main1")
	for i := 0; i < 10; i++ {
		m1.Read(o, 0).Write(o, 0)
	}
	b.Thread(m0)
	b.Thread(m1)
	prog := b.MustBuild()
	safeID := prog.MethodByName("safe").ID
	atomic := func(m vm.MethodID) bool { return m == safeID }

	filter := &txn.Filter{Unary: true} // no methods, unary only
	r, err := Run(prog, Config{
		Analysis: DCSecond, Seed: 2, Atomic: atomic, Filter: filter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ICD.RegularAccesses != 0 {
		t.Errorf("no regular transactions are selected, yet %d accesses instrumented",
			r.ICD.RegularAccesses)
	}
	if r.ICD.UnaryAccesses == 0 {
		t.Error("unary accesses must be instrumented")
	}
}
