package core

import (
	"testing"

	"doublechecker/internal/pcd"
	"doublechecker/internal/workloads"
)

// TestStressReplayAndEquivalence runs the central cross-checker properties
// over hundreds of random programs: Velodrome and DoubleChecker single-run
// agree on whether an interleaving has a violation, and PCD's two replay
// orders agree with each other.
func TestStressReplayAndEquivalence(t *testing.T) {
	for seed := int64(100); seed < 600; seed++ {
		prog, atomic := workloads.Random(seed)
		velo, err := Run(prog, Config{Analysis: Velodrome, Seed: 1, Atomic: atomic})
		if err != nil {
			t.Fatal(err)
		}
		bySeq, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic, ReplayOrder: pcd.BySeq})
		if err != nil {
			t.Fatal(err)
		}
		byEdges, err := Run(prog, Config{Analysis: DCSingle, Seed: 1, Atomic: atomic, ReplayOrder: pcd.ByEdges})
		if err != nil {
			t.Fatal(err)
		}
		if (len(bySeq.Violations) > 0) != (len(byEdges.Violations) > 0) {
			t.Errorf("seed %d: BySeq %d vs ByEdges %d", seed, len(bySeq.Violations), len(byEdges.Violations))
		}
		if (len(bySeq.Violations) > 0) != (len(velo.Violations) > 0) {
			t.Errorf("seed %d: velo %d vs DC %d", seed, len(velo.Violations), len(bySeq.Violations))
		}
	}
}

// TestStressRichPrograms runs the same properties over the rich generator,
// which exercises wait/notify, fork/join, nested ordered locks and arrays —
// every dependence-edge source the checkers handle.
func TestStressRichPrograms(t *testing.T) {
	for seed := int64(0); seed < 350; seed++ {
		prog, atomic := workloads.RandomRich(seed)
		for _, sched := range []int64{1, 2} {
			velo, err := Run(prog, Config{Analysis: Velodrome, Seed: sched, Atomic: atomic})
			if err != nil {
				t.Fatalf("seed %d/%d velo: %v", seed, sched, err)
			}
			veloInc, err := Run(prog, Config{Analysis: Velodrome, Seed: sched, Atomic: atomic, VelodromeIncremental: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(velo.Violations) != len(veloInc.Violations) {
				t.Errorf("seed %d sched %d: DFS %d vs incremental %d velodrome violations",
					seed, sched, len(velo.Violations), len(veloInc.Violations))
			}
			dc, err := Run(prog, Config{Analysis: DCSingle, Seed: sched, Atomic: atomic})
			if err != nil {
				t.Fatalf("seed %d/%d dc: %v", seed, sched, err)
			}
			if (len(velo.Violations) > 0) != (len(dc.Violations) > 0) {
				t.Errorf("seed %d sched %d: velo %d vs dc %d violations",
					seed, sched, len(velo.Violations), len(dc.Violations))
			}
			edges, err := Run(prog, Config{Analysis: DCSingle, Seed: sched, Atomic: atomic, ReplayOrder: pcd.ByEdges})
			if err != nil {
				t.Fatal(err)
			}
			if (len(dc.Violations) > 0) != (len(edges.Violations) > 0) {
				t.Errorf("seed %d sched %d: BySeq %d vs ByEdges %d",
					seed, sched, len(dc.Violations), len(edges.Violations))
			}
		}
	}
}
