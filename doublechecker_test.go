package doublechecker

import (
	"strings"
	"testing"
)

const racySource = `
program counter
object c
atomic method bump {
    read c.n
    compute 6
    write c.n
}
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`

const safeSource = `
program counter
object c
lock l
atomic method bump {
    acquire l
    read c.n
    write c.n
    release l
}
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`

func TestCheckSourceFindsRace(t *testing.T) {
	r, err := CheckSource(racySource, Options{Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Program != "counter" || r.AtomicMethods != 1 {
		t.Errorf("report header: %+v", r)
	}
	if len(r.BlamedMethods) != 1 || r.BlamedMethods[0] != "bump" {
		t.Errorf("blamed = %v, want [bump]", r.BlamedMethods)
	}
	if len(r.Violations) == 0 || r.Violations[0].CycleSize < 2 {
		t.Errorf("violations: %+v", r.Violations)
	}
}

func TestCheckSourceCleanProgram(t *testing.T) {
	for _, mode := range []Mode{ModeSingleRun, ModeVelodrome, ModeMultiRun} {
		r, err := CheckSource(safeSource, Options{Mode: mode, Trials: 6})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Violations) != 0 {
			t.Errorf("%s: clean program reported %d violations", mode, len(r.Violations))
		}
	}
}

func TestCheckSourceModesAgree(t *testing.T) {
	single, err := CheckSource(racySource, Options{Mode: ModeSingleRun, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	velo, err := CheckSource(racySource, Options{Mode: ModeVelodrome, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := CheckSource(racySource, Options{Mode: ModeMultiRun, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.BlamedMethods) == 0 || len(velo.BlamedMethods) == 0 || len(multi.BlamedMethods) == 0 {
		t.Errorf("all modes should find the race: single=%v velo=%v multi=%v",
			single.BlamedMethods, velo.BlamedMethods, multi.BlamedMethods)
	}
}

func TestCheckSourceParseError(t *testing.T) {
	_, err := CheckSource("program x\nmethod m { read q.f }\nthread m", Options{})
	if err == nil || !strings.Contains(err.Error(), "undefined object") {
		t.Errorf("err = %v", err)
	}
}

func TestCheckSourceUnknownMode(t *testing.T) {
	_, err := CheckSource(safeSource, Options{Mode: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("err = %v", err)
	}
}

func TestRefineSource(t *testing.T) {
	src := `
program mix
object c
lock l
atomic method safe { acquire l read c.a write c.a release l }
atomic method racy { read c.b compute 8 write c.b }
method main0 { loop 15 { call safe call racy } }
method main1 { loop 15 { call safe call racy } }
thread main0
thread main1
`
	r, err := RefineSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Removed) != 1 || r.Removed[0] != "racy" {
		t.Errorf("removed = %v, want [racy]", r.Removed)
	}
	found := false
	for _, n := range r.AtomicMethods {
		if n == "safe" {
			found = true
		}
		if n == "racy" {
			t.Error("racy must not survive refinement")
		}
	}
	if !found {
		t.Errorf("safe should stay atomic: %v", r.AtomicMethods)
	}
	if r.Trials < 10 {
		t.Errorf("refinement must run its stable window: %d trials", r.Trials)
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Mode != ModeSingleRun || o.Trials != 1 || o.Stickiness != 0.1 || o.FirstRuns != 10 {
		t.Errorf("defaults: %+v", o)
	}
}
