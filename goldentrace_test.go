package doublechecker_test

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	doublechecker "doublechecker"
	"doublechecker/internal/core"
	"doublechecker/internal/trace"
)

// goldenExpectation is one line of testdata/traces/expected.txt: the live
// run's findings captured when the trace was recorded.
type goldenExpectation struct {
	dynamic int
	blamed  []string
}

// loadGoldenExpectations parses expected.txt (`name dynamic=N blamed=[a b]`
// per line, written by the recording run).
func loadGoldenExpectations(t *testing.T) map[string]goldenExpectation {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "traces", "expected.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make(map[string]goldenExpectation)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var exp goldenExpectation
		rest := line
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			t.Fatalf("bad expectation line %q", line)
		}
		name = fields[0]
		if _, err := fmt.Sscanf(fields[1], "dynamic=%d", &exp.dynamic); err != nil {
			t.Fatalf("bad expectation line %q: %v", line, err)
		}
		open := strings.Index(fields[1], "blamed=[")
		closeIdx := strings.LastIndex(fields[1], "]")
		if open < 0 || closeIdx < open {
			t.Fatalf("bad expectation line %q", line)
		}
		inner := fields[1][open+len("blamed=[") : closeIdx]
		if inner != "" {
			exp.blamed = strings.Fields(inner)
		}
		out[name] = exp
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no golden expectations")
	}
	return out
}

// TestGoldenTraces is the trace-format regression gate: every checked-in
// trace must decode, and replaying it through single-run DoubleChecker must
// reproduce the recording run's violations exactly — same dynamic count,
// same blamed methods. A failure here means either the format or a
// checker's semantics drifted from what the corpus froze.
func TestGoldenTraces(t *testing.T) {
	expected := loadGoldenExpectations(t)
	paths, err := filepath.Glob(filepath.Join("testdata", "traces", "*.dct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(expected) {
		t.Fatalf("%d trace files vs %d expectations", len(paths), len(expected))
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".dct")
		exp, ok := expected[name]
		if !ok {
			t.Errorf("%s: no expectation recorded", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			d, err := trace.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Complete {
				t.Error("trace not complete")
			}
			res, err := core.RunTrace(context.Background(), d, core.Config{Analysis: core.DCSingle})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != exp.dynamic {
				t.Errorf("dynamic violations = %d, recorded run found %d", len(res.Violations), exp.dynamic)
			}
			got := res.BlamedMethodNames(d.Header.Program)
			if fmt.Sprint(got) != fmt.Sprint(exp.blamed) && !(len(got) == 0 && len(exp.blamed) == 0) {
				t.Errorf("blamed = %v, recorded run blamed %v", got, exp.blamed)
			}
		})
	}
}

// TestGoldenTracesPublicAPI replays the corpus through the public
// CheckTrace entry point and asserts the same frozen findings.
func TestGoldenTracesPublicAPI(t *testing.T) {
	expected := loadGoldenExpectations(t)
	for name, exp := range expected {
		f, err := os.Open(filepath.Join("testdata", "traces", name+".dct"))
		if err != nil {
			t.Fatal(err)
		}
		report, err := doublechecker.CheckTrace(f, doublechecker.Options{})
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(report.Violations) != exp.dynamic {
			t.Errorf("%s: %d violations, want %d", name, len(report.Violations), exp.dynamic)
		}
		want := exp.blamed
		if want == nil {
			want = []string{}
		}
		if fmt.Sprint(report.BlamedMethods) != fmt.Sprint(want) {
			t.Errorf("%s: blamed %v, want %v", name, report.BlamedMethods, want)
		}
	}
}

// TestTraceAPIValidation covers the public API's option checks: a trace is
// one execution, so multi-trial and multi-run requests are rejected, and a
// non-trace input fails with the typed error.
func TestTraceAPIValidation(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "traces", "hsqldb6.dct"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doublechecker.CheckTrace(strings.NewReader(string(raw)), doublechecker.Options{
		Mode: doublechecker.ModeMultiRun,
	}); err == nil || !strings.Contains(err.Error(), "spans multiple executions") {
		t.Errorf("multi-run replay: %v", err)
	}
	if _, err := doublechecker.CheckTrace(strings.NewReader(string(raw)), doublechecker.Options{
		Trials: 3,
	}); err == nil || !strings.Contains(err.Error(), "Trials") {
		t.Errorf("Trials 3 replay: %v", err)
	}
	if _, err := doublechecker.CheckTrace(strings.NewReader("not a trace"), doublechecker.Options{}); err == nil {
		t.Error("non-trace input accepted")
	}
	var sink strings.Builder
	if _, err := doublechecker.RecordSource("program p\nobject o\nmethod m { read o.f }\nthread m\n",
		&sink, doublechecker.Options{Trials: 2}); err == nil || !strings.Contains(err.Error(), "Trials") {
		t.Errorf("Trials 2 record: %v", err)
	}
}

// TestGoldenTracesCheckersAgree runs the differential driver over the whole
// corpus: DoubleChecker's single-run mode and Velodrome must report the
// same violations on every frozen interleaving, and nothing either blames
// may escape ICD's over-approximation.
func TestGoldenTracesCheckersAgree(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "traces", "*.dct"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus missing: %v", err)
	}
	for _, path := range paths {
		d, err := trace.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		td, err := core.DiffTrace(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if !td.Agree() {
			t.Errorf("%s: %s\n  dc: %v\n  velo: %v\n  icd-missed: %v",
				path, td.Summary(), td.DCViolations, td.VeloViolations, td.ICDMissed)
		}
	}
}
