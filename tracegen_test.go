package doublechecker_test

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/spec"
	"doublechecker/internal/trace"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// stressTraceSeed is the schedule seed every stress trace is recorded under;
// the interleaving (and so the frozen findings) follows from it and the
// workload's designed stickiness.
const stressTraceSeed = 1

// TestRegenStressTraces re-records the SCC-stress golden traces. It is a
// generator, not a test: set REGEN_TRACES=1 to run it. For each workload in
// workloads.Stress() it executes one live DCSingle run at the fixed seed,
// captures the event stream into testdata/traces/<name>.dct, and rewrites
// that workload's line in expected.txt with the live run's findings (other
// lines are preserved; the file stays sorted by name).
func TestRegenStressTraces(t *testing.T) {
	if os.Getenv("REGEN_TRACES") == "" {
		t.Skip("generator; set REGEN_TRACES=1 to re-record the stress traces")
	}
	dir := filepath.Join("testdata", "traces")
	lines := readExpectedLines(t, filepath.Join(dir, "expected.txt"))
	for _, name := range workloads.Stress() {
		b, err := workloads.Build(name, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		s := spec.Initial(b.Prog)
		if err := s.ExcludeByName(b.InitialExclusions...); err != nil {
			t.Fatal(err)
		}
		var atomicIDs []vm.MethodID
		for _, m := range b.Prog.Methods {
			if s.Atomic(m.ID) {
				atomicIDs = append(atomicIDs, m.ID)
			}
		}
		path := filepath.Join(dir, name+".dct")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := trace.NewWriter(f, trace.Header{
			Program: b.Prog,
			Atomic:  atomicIDs,
			Seed:    stressTraceSeed,
			Sched:   fmt.Sprintf("sticky(%g)", b.Stickiness),
			Source:  name,
		})
		if err != nil {
			f.Close()
			t.Fatal(err)
		}
		res, err := core.RecordRun(context.Background(), b.Prog, w, core.RecordConfig{
			Config: core.Config{
				Analysis: core.DCSingle,
				Sched:    vm.NewSticky(stressTraceSeed, b.Stickiness),
				Atomic:   s.Atomic,
			},
			Source: name,
		})
		if err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		blamed := res.BlamedMethodNames(b.Prog)
		lines[name] = fmt.Sprintf("%s dynamic=%d blamed=[%s]", name, len(res.Violations), strings.Join(blamed, " "))
		t.Logf("recorded %s: %s", path, lines[name])
	}
	writeExpectedLines(t, filepath.Join(dir, "expected.txt"), lines)
}

// readExpectedLines loads expected.txt keyed by workload name.
func readExpectedLines(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[strings.SplitN(line, " ", 2)[0]] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// writeExpectedLines rewrites expected.txt sorted by workload name.
func writeExpectedLines(t *testing.T, path string, lines map[string]string) {
	t.Helper()
	names := make([]string, 0, len(lines))
	for n := range lines {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(lines[n])
		b.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}
