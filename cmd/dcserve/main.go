// Command dcserve runs the checker as an always-on HTTP service: POST a
// recorded .dct trace to /check (the response is byte-identical to `dcheck
// -replay` on the same file) or check a named built-in workload via
// /check/workload. The service sheds load with 429 when its admission queue
// fills, quarantines repeatedly-crashing inputs behind a circuit breaker,
// shares a global PCD worker budget across requests, and drains gracefully
// on SIGTERM (readyz flips to 503, in-flight checks finish within
// -drain-timeout).
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"doublechecker/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := cli.DCServe(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}
