// Command dctrace records and replays VM event-stream traces: `record`
// executes a workload-language (.dcp) program once and captures every
// instrumentation event into a compact .dct file; `info` describes trace
// files; `replay` re-checks a trace through any analysis without
// re-executing the program; and `diff` replays each trace through
// DoubleChecker's single-run mode, Velodrome, and the ICD-only first run,
// failing if the checkers disagree on the same interleaving. Replay and
// diff shard multiple traces (or a directory of them) across a supervised
// worker pool.
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"doublechecker/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := cli.DCTraceContext(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}
