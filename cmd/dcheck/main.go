// Command dcheck runs an atomicity checker over a workload-language (.dcp)
// program and reports conflict-serializability violations, with optional
// timeline explanations (-v), Graphviz export (-dot), static lint (-lint),
// iterative refinement (-refine) and modelled-cost reporting (-cost).
// Trials run supervised: -trial-timeout and -max-steps bound them, and
// SIGINT/SIGTERM cancel the whole run promptly.
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"doublechecker/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := cli.DCheckContext(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}
