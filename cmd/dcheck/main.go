// Command dcheck runs an atomicity checker over a workload-language (.dcp)
// program and reports conflict-serializability violations, with optional
// timeline explanations (-v), Graphviz export (-dot), static lint (-lint),
// iterative refinement (-refine) and modelled-cost reporting (-cost).
package main

import (
	"os"

	"doublechecker/internal/cli"
)

func main() {
	os.Exit(cli.DCheck(os.Args[1:], os.Stdout, os.Stderr))
}
