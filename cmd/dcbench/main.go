// Command dcbench regenerates the paper's evaluation — Table 2, Figure 7,
// Table 3, the §5.4 experiments, the design-choice ablations, and the
// filter-precision study — printing measured values next to the paper's.
// SIGINT/SIGTERM stop the suite at the next experiment boundary.
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"doublechecker/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := cli.DCBenchContext(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}
