// Command dcbench regenerates the paper's evaluation — Table 2, Figure 7,
// Table 3, the §5.4 experiments, the design-choice ablations, and the
// filter-precision study — printing measured values next to the paper's.
package main

import (
	"os"

	"doublechecker/internal/cli"
)

func main() {
	os.Exit(cli.DCBench(os.Args[1:], os.Stdout, os.Stderr))
}
