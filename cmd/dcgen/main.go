// Command dcgen lists the built-in benchmark suite or dumps one benchmark
// as workload-language source for inspection and re-checking with dcheck.
package main

import (
	"os"

	"doublechecker/internal/cli"
)

func main() {
	os.Exit(cli.DCGen(os.Args[1:], os.Stdout, os.Stderr))
}
