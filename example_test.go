package doublechecker_test

import (
	"fmt"

	doublechecker "doublechecker"
)

// ExampleCheckSource finds the classic unsynchronized read-modify-write.
func ExampleCheckSource() {
	src := `
program counter
object c
atomic method bump {
    read c.n
    compute 6
    write c.n
}
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`
	report, err := doublechecker.CheckSource(src, doublechecker.Options{Trials: 8})
	if err != nil {
		panic(err)
	}
	fmt.Println("blamed:", report.BlamedMethods)
	// Output: blamed: [bump]
}

// ExampleRefineSource derives a specification by iterative refinement
// (the paper's Figure 6): the racy method is removed, the locked one stays.
func ExampleRefineSource() {
	src := `
program mix
object c
lock l
atomic method safe { acquire l read c.a write c.a release l }
atomic method racy { read c.b compute 8 write c.b }
method main0 { loop 15 { call safe call racy } }
method main1 { loop 15 { call safe call racy } }
thread main0
thread main1
`
	report, err := doublechecker.RefineSource(src, doublechecker.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("removed:", report.Removed)
	fmt.Println("atomic:", report.AtomicMethods)
	// Output:
	// removed: [racy]
	// atomic: [safe]
}

// ExampleCheckSource_multiRun runs the paper's two-phase pipeline: cheap
// ICD-only first runs, then one precise, filtered second run.
func ExampleCheckSource_multiRun() {
	src := `
program counter
object c
atomic method bump { read c.n compute 6 write c.n }
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`
	report, err := doublechecker.CheckSource(src, doublechecker.Options{
		Mode:   doublechecker.ModeMultiRun,
		Trials: 6,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("blamed:", report.BlamedMethods)
	// Output: blamed: [bump]
}
