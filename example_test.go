package doublechecker_test

import (
	"bytes"
	"fmt"

	doublechecker "doublechecker"
)

// ExampleCheckSource finds the classic unsynchronized read-modify-write.
func ExampleCheckSource() {
	src := `
program counter
object c
atomic method bump {
    read c.n
    compute 6
    write c.n
}
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`
	report, err := doublechecker.CheckSource(src, doublechecker.Options{Trials: 8})
	if err != nil {
		panic(err)
	}
	fmt.Println("blamed:", report.BlamedMethods)
	// Output: blamed: [bump]
}

// ExampleRefineSource derives a specification by iterative refinement
// (the paper's Figure 6): the racy method is removed, the locked one stays.
func ExampleRefineSource() {
	src := `
program mix
object c
lock l
atomic method safe { acquire l read c.a write c.a release l }
atomic method racy { read c.b compute 8 write c.b }
method main0 { loop 15 { call safe call racy } }
method main1 { loop 15 { call safe call racy } }
thread main0
thread main1
`
	report, err := doublechecker.RefineSource(src, doublechecker.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("removed:", report.Removed)
	fmt.Println("atomic:", report.AtomicMethods)
	// Output:
	// removed: [racy]
	// atomic: [safe]
}

// ExampleRecordSource records one execution's event stream as a trace,
// then re-checks the identical interleaving twice — through DoubleChecker
// and through Velodrome — without ever re-executing the program.
func ExampleRecordSource() {
	src := `
program counter
object c
atomic method bump {
    read c.n
    compute 6
    write c.n
}
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`
	var buf bytes.Buffer
	live, err := doublechecker.RecordSource(src, &buf, doublechecker.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("live:", live.BlamedMethods)

	dc, err := doublechecker.CheckTrace(bytes.NewReader(buf.Bytes()), doublechecker.Options{})
	if err != nil {
		panic(err)
	}
	velo, err := doublechecker.CheckTrace(bytes.NewReader(buf.Bytes()), doublechecker.Options{
		Mode: doublechecker.ModeVelodrome,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("replayed (doublechecker):", dc.BlamedMethods)
	fmt.Println("replayed (velodrome):", velo.BlamedMethods)
	// Output:
	// live: [bump]
	// replayed (doublechecker): [bump]
	// replayed (velodrome): [bump]
}

// ExampleCheckSource_multiRun runs the paper's two-phase pipeline: cheap
// ICD-only first runs, then one precise, filtered second run.
func ExampleCheckSource_multiRun() {
	src := `
program counter
object c
atomic method bump { read c.n compute 6 write c.n }
method main0 { loop 20 { call bump } }
method main1 { loop 20 { call bump } }
thread main0
thread main1
`
	report, err := doublechecker.CheckSource(src, doublechecker.Options{
		Mode:   doublechecker.ModeMultiRun,
		Trials: 6,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("blamed:", report.BlamedMethods)
	// Output: blamed: [bump]
}
