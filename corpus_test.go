package doublechecker

import (
	"os"
	"path/filepath"
	"testing"
)

// TestProgramCorpus checks every shipped .dcp program against its expected
// outcome, under both DoubleChecker single-run and Velodrome — the same
// files a user would feed to cmd/dcheck.
func TestProgramCorpus(t *testing.T) {
	cases := []struct {
		file   string
		blamed []string // expected blamed methods across trials (nil = clean)
	}{
		{"bank.dcp", []string{"audit"}},
		{"workqueue.dcp", []string{"countDone"}},
		{"handoff.dcp", nil},
		{"matrix.dcp", nil},
	}
	for _, c := range cases {
		src, err := os.ReadFile(filepath.Join("examples", "programs", c.file))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeSingleRun, ModeVelodrome} {
			r, err := CheckSource(string(src), Options{Mode: mode, Trials: 10})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.file, mode, err)
			}
			if len(c.blamed) == 0 {
				if len(r.Violations) != 0 {
					t.Errorf("%s/%s: expected clean, got %d violations blaming %v",
						c.file, mode, len(r.Violations), r.BlamedMethods)
				}
				continue
			}
			if len(r.BlamedMethods) != len(c.blamed) {
				t.Errorf("%s/%s: blamed %v, want %v", c.file, mode, r.BlamedMethods, c.blamed)
				continue
			}
			for i, want := range c.blamed {
				if r.BlamedMethods[i] != want {
					t.Errorf("%s/%s: blamed %v, want %v", c.file, mode, r.BlamedMethods, c.blamed)
				}
			}
		}
	}
}
