package doublechecker_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/trace"
)

// TestParallelPCDDeterminism is the worker-count invariance gate: replaying
// every golden trace with the concurrent PCD pool must be observationally
// identical to the serial replay — the frozen expected.txt findings AND a
// byte-identical deterministic telemetry snapshot — for every worker count,
// on every iteration. Scheduling, queue interleaving, and work stealing must
// leave no trace in the results. Run it under -race to also make it a
// synchronization gate.
func TestParallelPCDDeterminism(t *testing.T) {
	expected := loadGoldenExpectations(t)
	paths, err := filepath.Glob(filepath.Join("testdata", "traces", "*.dct"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus missing: %v", err)
	}
	iters := 5
	if testing.Short() {
		iters = 2
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".dct")
		exp := expected[name]
		t.Run(name, func(t *testing.T) {
			d, err := trace.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// The serial replay is the reference; every pooled replay must
			// reproduce its snapshot byte for byte.
			ref, err := core.RunTrace(context.Background(), d, core.Config{Analysis: core.DCSingle})
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Telemetry.Deterministic().JSON()
			for _, workers := range []int{1, 2, 4, 8} {
				for iter := 0; iter < iters; iter++ {
					res, err := core.RunTrace(context.Background(), d, core.Config{
						Analysis:   core.DCSingle,
						PCDWorkers: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Violations) != exp.dynamic {
						t.Fatalf("workers=%d iter=%d: %d violations, expected.txt has %d",
							workers, iter, len(res.Violations), exp.dynamic)
					}
					got := res.BlamedMethodNames(d.Header.Program)
					if fmt.Sprint(got) != fmt.Sprint(exp.blamed) && !(len(got) == 0 && len(exp.blamed) == 0) {
						t.Fatalf("workers=%d iter=%d: blamed %v, expected.txt has %v",
							workers, iter, got, exp.blamed)
					}
					if snap := res.Telemetry.Deterministic().JSON(); !bytes.Equal(snap, want) {
						t.Fatalf("workers=%d iter=%d: deterministic snapshot diverged from serial replay\nserial: %s\npooled: %s",
							workers, iter, want, snap)
					}
					if len(res.PCDQuarantined) != 0 {
						t.Fatalf("workers=%d iter=%d: unexpected quarantines %v", workers, iter, res.PCDQuarantined)
					}
				}
			}
		})
	}
}
