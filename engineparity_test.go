package doublechecker_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/icd"
	"doublechecker/internal/trace"
)

// TestEngineParityGoldenCorpus is the scan/incremental contract: across the
// entire golden corpus, replaying under -icd-engine=scan and
// -icd-engine=incremental must render byte-identical reports, identical
// violation signatures, and the same ICD detection outcomes. The engines may
// do different amounts of work (that is the point), but never find different
// things.
func TestEngineParityGoldenCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "traces", "*.dct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden traces")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".dct")
		t.Run(name, func(t *testing.T) {
			d, err := trace.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			run := func(analysis core.Analysis, engine icd.Engine) *core.Result {
				res, err := core.RunTrace(context.Background(), d, core.Config{
					Analysis: analysis, ICDEngine: engine,
				})
				if err != nil {
					t.Fatalf("%v/%v: %v", analysis, engine, err)
				}
				return res
			}

			// Single-run mode: the full pipeline report must match byte for
			// byte.
			scan := run(core.DCSingle, icd.EngineScan)
			inc := run(core.DCSingle, icd.EngineIncremental)
			if a, b := core.ReplayReport(path, d, scan), core.ReplayReport(path, d, inc); a != b {
				t.Errorf("reports differ:\n--- scan ---\n%s\n--- incremental ---\n%s", a, b)
			}
			if a, b := fmt.Sprint(core.ViolationSignatures(scan, d.Header.Program)), fmt.Sprint(core.ViolationSignatures(inc, d.Header.Program)); a != b {
				t.Errorf("violation signatures differ:\nscan: %s\nincremental: %s", a, b)
			}
			if scan.ICD.SCCs != inc.ICD.SCCs || scan.ICD.SCCTxns != inc.ICD.SCCTxns ||
				scan.ICD.IDGEdges != inc.ICD.IDGEdges {
				t.Errorf("detection outcomes differ: scan %+v vs incremental %+v", scan.ICD, inc.ICD)
			}

			// Multi-run first run: the non-logging configuration additionally
			// exercises transaction recycling under the incremental engine;
			// the blamed-method output feeding the second run must agree.
			fScan := run(core.DCFirst, icd.EngineScan)
			fInc := run(core.DCFirst, icd.EngineIncremental)
			if a, b := fmt.Sprint(fScan.BlamedMethodNames(d.Header.Program)), fmt.Sprint(fInc.BlamedMethodNames(d.Header.Program)); a != b {
				t.Errorf("first-run blame differs: scan %s vs incremental %s", a, b)
			}
			if fScan.ICD.SCCs != fInc.ICD.SCCs || fScan.ICD.SCCTxns != fInc.ICD.SCCTxns {
				t.Errorf("first-run detection differs: scan %+v vs incremental %+v", fScan.ICD, fInc.ICD)
			}
		})
	}
}
