package doublechecker

// Supervisor tests: these prove — by deterministic fault injection — that
// every recovery path of the supervised checking pipeline actually fires:
// panic quarantine, OOM downgrade, deadlock retry with seed rotation,
// wall-clock deadlines, and prompt cancellation. Where a fault targets one
// trial, the untouched trials' findings are asserted identical to an
// uninjected run with the same seeds.

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"doublechecker/internal/core"
	"doublechecker/internal/faultinject"
	"doublechecker/internal/lang"
	"doublechecker/internal/supervise"
	"doublechecker/internal/vm"
)

// stuckSource deadlocks under every schedule: its only thread waits on a
// monitor nobody will ever notify.
const stuckSource = `
program stuck
object o
lock l
method main0 { acquire l wait l release l read o.x }
thread main0
`

// abbaSource deadlocks only under schedules that interleave the two
// opposing lock acquisitions; most sticky schedules survive it.
const abbaSource = `
program abba
object o
lock a
lock b
atomic method m0 { acquire a acquire b read o.x write o.x release b release a }
atomic method m1 { acquire b acquire a read o.x write o.x release a release b }
method main0 { loop 3 { call m0 } }
method main1 { loop 3 { call m1 } }
thread main0
thread main1
`

// slowSource is racySource scaled up so a run spans thousands of VM steps —
// long enough for stall injection plus a deadline to interrupt it mid-run.
const slowSource = `
program slow
object c
atomic method bump { read c.n compute 6 write c.n }
method main0 { loop 300 { call bump } }
method main1 { loop 300 { call bump } }
thread main0
thread main1
`

// violationsBySeed indexes a report's violations for per-seed comparison.
func violationsBySeed(r *Report) map[int64][]Violation {
	m := map[int64][]Violation{}
	for _, v := range r.Violations {
		m[v.Seed] = append(m[v.Seed], v)
	}
	return m
}

// assertSeedsUnchanged checks that for every seed except the excluded ones,
// the injected report found exactly the baseline's violations.
func assertSeedsUnchanged(t *testing.T, baseline, injected *Report, excluded ...int64) {
	t.Helper()
	skip := map[int64]bool{}
	for _, s := range excluded {
		skip[s] = true
	}
	base, got := violationsBySeed(baseline), violationsBySeed(injected)
	for seed, want := range base {
		if skip[seed] {
			continue
		}
		if !reflect.DeepEqual(got[seed], want) {
			t.Errorf("seed %d: injected run diverged: got %+v, want %+v", seed, got[seed], want)
		}
	}
	for seed := range got {
		if !skip[seed] && base[seed] == nil {
			t.Errorf("seed %d: injected run found violations the baseline did not: %+v", seed, got[seed])
		}
	}
}

func TestPanicQuarantineKeepsOtherTrials(t *testing.T) {
	opts := Options{Trials: 4, Seed: 1}
	baseline, err := CheckSource(racySource, opts)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.CompletedTrials != 4 || len(baseline.Failures) != 0 {
		t.Fatalf("baseline not clean: %+v", baseline)
	}

	const targetSeed = 3
	injected := opts
	injected.inject = func(a core.Analysis, seed int64, cfg *core.Config) {
		if a == core.DCSingle && seed == targetSeed {
			cfg.WrapInst = func(in vm.Instrumentation) vm.Instrumentation {
				return faultinject.Inst(in, &faultinject.Plan{PanicAtAccess: 10, PanicMsg: "injected checker bug"})
			}
		}
	}
	r, err := CheckSource(racySource, injected)
	if err != nil {
		t.Fatalf("a single panicking trial aborted the check: %v", err)
	}
	if r.CompletedTrials != 3 {
		t.Fatalf("CompletedTrials = %d, want 3", r.CompletedTrials)
	}
	if len(r.Failures) != 1 {
		t.Fatalf("want exactly one failure, got %+v", r.Failures)
	}
	f := r.Failures[0]
	if f.Kind != "panic" || f.Seed != targetSeed || f.Analysis != string(ModeSingleRun) {
		t.Fatalf("bad failure record: %+v", f)
	}
	if len(f.StackDigest) != 8 {
		t.Fatalf("missing stack digest: %+v", f)
	}
	if f.Recovered {
		t.Fatal("panic marked recovered although the trial was lost")
	}
	if f.Err == nil || !containsSub(f.Err.Error(), "injected checker bug") {
		t.Fatalf("failure lost the panic value: %v", f.Err)
	}
	assertSeedsUnchanged(t, baseline, r, targetSeed)
}

func TestPanicInTxEndBookkeepingIsQuarantined(t *testing.T) {
	// Same recovery path, but the panic fires in the transaction-end
	// callback — the txn.EndRegular seam.
	opts := Options{Trials: 2, Seed: 1}
	opts.inject = func(a core.Analysis, seed int64, cfg *core.Config) {
		if a == core.DCSingle && seed == 1 {
			cfg.WrapInst = func(in vm.Instrumentation) vm.Instrumentation {
				return faultinject.Inst(in, &faultinject.Plan{PanicAtTxEnd: 2})
			}
		}
	}
	r, err := CheckSource(racySource, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompletedTrials != 1 || len(r.Failures) != 1 || r.Failures[0].Kind != "panic" {
		t.Fatalf("report %+v failures %+v", r, r.Failures)
	}
}

func TestOOMDowngradesToMultiRun(t *testing.T) {
	opts := Options{Trials: 3, Seed: 1, MemoryBudget: 1 << 30}
	baseline, err := CheckSource(racySource, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Downgrades) != 0 || baseline.CompletedTrials != 3 {
		t.Fatalf("baseline tripped the huge budget: %+v", baseline)
	}

	const targetSeed = 2
	injected := opts
	injected.inject = func(a core.Analysis, seed int64, cfg *core.Config) {
		if a == core.DCSingle && seed == targetSeed {
			meter := cfg.Meter
			cfg.WrapInst = func(in vm.Instrumentation) vm.Instrumentation {
				return faultinject.Inst(in, &faultinject.Plan{
					OOMAtAccess: 5, OOMBytes: 1 << 31, Meter: meter,
				})
			}
		}
	}
	r, err := CheckSource(racySource, injected)
	if err != nil {
		t.Fatalf("an OOM trial aborted the check: %v", err)
	}
	if r.CompletedTrials != 3 {
		t.Fatalf("CompletedTrials = %d, want 3 (downgraded trial still completes)", r.CompletedTrials)
	}
	if len(r.Downgrades) != 1 {
		t.Fatalf("want one downgrade, got %+v", r.Downgrades)
	}
	d := r.Downgrades[0]
	if d.Seed != targetSeed || d.From != ModeSingleRun || d.To != ModeMultiRun || d.Reason == "" {
		t.Fatalf("bad downgrade record: %+v", d)
	}
	// Untouched trials match the baseline; the downgraded seed was
	// re-checked by the multi-run pipeline, which still finds the race.
	assertSeedsUnchanged(t, baseline, r, targetSeed)
	if len(violationsBySeed(r)[targetSeed]) == 0 {
		t.Error("downgraded trial found no violations; the multi-run fallback should still catch the race")
	}
	for _, m := range r.BlamedMethods {
		if m == "bump" {
			return
		}
	}
	t.Fatalf("blamed methods lost after downgrade: %v", r.BlamedMethods)
}

// cleanAbbaWindow finds a base seed w (deterministically) such that seeds
// w, w+1, w+2 and the retry seed w+1+DefaultSeedStride all complete under
// single-run mode — so any deadlock in the test comes from injection alone.
func cleanAbbaWindow(t *testing.T) int64 {
	t.Helper()
	unit, err := lang.ParseAndLower(abbaSource)
	if err != nil {
		t.Fatal(err)
	}
	sp := specFromUnit(unit)
	clean := func(seed int64) bool {
		_, err := core.Run(unit.Prog, core.Config{
			Analysis: core.DCSingle,
			Sched:    vm.NewSticky(seed, 0.1),
			Atomic:   sp.Atomic,
		})
		return err == nil
	}
	for w := int64(1); w < 2000; w++ {
		if clean(w) && clean(w+1) && clean(w+2) && clean(w+1+supervise.DefaultSeedStride) {
			return w
		}
	}
	t.Fatal("no clean seed window found for abbaSource")
	return 0
}

func TestInjectedDeadlockScheduleIsRetriedUnderRotatedSeed(t *testing.T) {
	w := cleanAbbaWindow(t)
	opts := Options{Trials: 3, Seed: w}
	baseline, err := CheckSource(abbaSource, opts)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.CompletedTrials != 3 || len(baseline.Failures) != 0 {
		t.Fatalf("baseline window not clean: %+v", baseline.Failures)
	}

	targetSeed := w + 1
	injected := opts
	injected.inject = func(a core.Analysis, seed int64, cfg *core.Config) {
		if a == core.DCSingle && seed == targetSeed {
			// Alternating the two threads drives the AB-BA locking straight
			// into deadlock: t0 takes a, t1 takes b, both block.
			cfg.Sched = vm.NewScripted([]vm.ThreadID{0, 1, 0, 1, 0, 1, 0, 1}, false)
		}
	}
	r, err := CheckSource(abbaSource, injected)
	if err != nil {
		t.Fatalf("an injected deadlock schedule sank the check: %v", err)
	}
	if r.CompletedTrials != 3 {
		t.Fatalf("CompletedTrials = %d, want 3 (deadlocked trial retries under a rotated seed)", r.CompletedTrials)
	}
	if len(r.Failures) != 1 {
		t.Fatalf("want one recorded deadlock, got %+v", r.Failures)
	}
	f := r.Failures[0]
	if f.Kind != "deadlock" || f.Seed != targetSeed || !f.Recovered || !errors.Is(f.Err, vm.ErrDeadlock) {
		t.Fatalf("bad failure record: %+v", f)
	}
	// The recovered trial re-ran under the rotated seed; untouched trials
	// are unchanged.
	assertSeedsUnchanged(t, baseline, r, targetSeed, targetSeed+supervise.DefaultSeedStride)
	for _, v := range r.Violations {
		if v.Seed == targetSeed {
			t.Fatalf("violation attributed to the deadlocked seed %d: %+v", targetSeed, v)
		}
	}
}

func TestMultiRunToleratesLostFirstRun(t *testing.T) {
	opts := Options{Mode: ModeMultiRun, Trials: 1, Seed: 1, FirstRuns: 5}
	targetFirstSeed := int64(1*1000 + 2)
	opts.inject = func(a core.Analysis, seed int64, cfg *core.Config) {
		if a == core.DCFirst && seed == targetFirstSeed {
			cfg.MaxSteps = 5 // force vm.ErrStepLimit on this first run only
		}
	}
	r, err := CheckSource(racySource, opts)
	if err != nil {
		t.Fatalf("one lost first run failed the pipeline: %v", err)
	}
	if r.CompletedTrials != 1 {
		t.Fatalf("trial not completed: %+v", r)
	}
	if len(r.Failures) != 1 {
		t.Fatalf("want the lost first run recorded, got %+v", r.Failures)
	}
	f := r.Failures[0]
	if f.Analysis != core.DCFirst.String() || f.Seed != targetFirstSeed || f.Kind != "step-limit" || !f.Recovered {
		t.Fatalf("bad first-run failure record: %+v", f)
	}
	if !errors.Is(f.Err, vm.ErrStepLimit) {
		t.Fatalf("first-run failure lost its cause: %v", f.Err)
	}
}

func TestTrialDeadlineBoundsLongTrial(t *testing.T) {
	stallAll := func(a core.Analysis, seed int64, cfg *core.Config) {
		cfg.WrapInst = func(in vm.Instrumentation) vm.Instrumentation {
			return faultinject.Inst(in, &faultinject.Plan{
				StallAtAccess: 1, StallEveryAccess: 1, StallFor: 2 * time.Millisecond,
			})
		}
	}
	// Uninjected, the check finishes fast; stalled, a full run takes well
	// over two seconds (slowSource emits ~1200 accesses at 2ms each) — the
	// deadline must cut it off far earlier.
	opts := Options{Trials: 1, Seed: 1, TrialTimeout: 30 * time.Millisecond}
	opts.inject = stallAll
	start := time.Now()
	_, err := CheckSource(slowSource, opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled trial completed under a 30ms deadline")
	}
	if !errors.Is(err, ErrTrialTimeout) {
		t.Fatalf("want ErrTrialTimeout, got %v", err)
	}
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("deadline did not bound the trial: took %v (a full stalled run takes >2s)", elapsed)
	}
}

func TestTrialDeadlineOnOneSeedKeepsOthers(t *testing.T) {
	opts := Options{Trials: 3, Seed: 1}
	baseline, err := CheckSource(slowSource, opts)
	if err != nil {
		t.Fatal(err)
	}
	const targetSeed = 2
	injected := opts
	injected.TrialTimeout = 50 * time.Millisecond
	injected.inject = func(a core.Analysis, seed int64, cfg *core.Config) {
		if a == core.DCSingle && seed == targetSeed {
			cfg.WrapInst = func(in vm.Instrumentation) vm.Instrumentation {
				return faultinject.Inst(in, &faultinject.Plan{
					StallAtAccess: 1, StallEveryAccess: 1, StallFor: 2 * time.Millisecond,
				})
			}
		}
	}
	r, err := CheckSource(slowSource, injected)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompletedTrials != 2 {
		t.Fatalf("CompletedTrials = %d, want 2", r.CompletedTrials)
	}
	if len(r.Failures) != 1 || r.Failures[0].Kind != "timeout" || r.Failures[0].Seed != targetSeed {
		t.Fatalf("want one timeout failure for seed %d, got %+v", targetSeed, r.Failures)
	}
	if !errors.Is(r.Failures[0].Err, ErrTrialTimeout) {
		t.Fatalf("timeout failure lost its type: %v", r.Failures[0].Err)
	}
	assertSeedsUnchanged(t, baseline, r, targetSeed)
}

func TestCanceledContextReturnsPromptlyWithoutRunningTrials(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := 0
	opts := Options{Trials: 100}
	opts.inject = func(core.Analysis, int64, *core.Config) { runs++ }
	start := time.Now()
	r, err := CheckSourceContext(ctx, racySource, opts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v (report %+v)", err, r)
	}
	if runs != 0 {
		t.Fatalf("%d runs started under a canceled context", runs)
	}
	if time.Since(start) > time.Second {
		t.Fatal("canceled check did not return promptly")
	}
}

func TestCancellationMidCheckAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	trials := 0
	opts := Options{Trials: 1000}
	opts.inject = func(a core.Analysis, _ int64, _ *core.Config) {
		trials++
		if trials == 3 {
			cancel()
		}
	}
	_, err := CheckSourceContext(ctx, racySource, opts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if trials > 4 {
		t.Fatalf("%d runs started after cancellation", trials)
	}
}

func TestRefineSourceContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RefineSourceContext(ctx, racySource, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestErrorPropagationDeadlockEveryMode(t *testing.T) {
	for _, mode := range []Mode{ModeSingleRun, ModeMultiRun, ModeVelodrome} {
		r, err := CheckSource(stuckSource, Options{Mode: mode, Trials: 3, FirstRuns: 3})
		if err == nil {
			t.Fatalf("%s: deterministically deadlocking program produced report %+v", mode, r)
		}
		if !errors.Is(err, vm.ErrDeadlock) {
			t.Fatalf("%s: error does not wrap vm.ErrDeadlock: %v", mode, err)
		}
	}
}

func TestErrorPropagationStepLimitEveryMode(t *testing.T) {
	for _, mode := range []Mode{ModeSingleRun, ModeMultiRun, ModeVelodrome} {
		r, err := CheckSource(racySource, Options{Mode: mode, Trials: 2, FirstRuns: 3, MaxSteps: 5})
		if err == nil {
			t.Fatalf("%s: step-limited program produced report %+v", mode, r)
		}
		if !errors.Is(err, vm.ErrStepLimit) {
			t.Fatalf("%s: error does not wrap vm.ErrStepLimit: %v", mode, err)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"unknown mode", Options{Mode: "quantum"}, "unknown mode"},
		{"negative trials", Options{Trials: -1}, "Trials"},
		{"negative seed", Options{Seed: -5}, "Seed"},
		{"stickiness above one", Options{Stickiness: 1.5}, "Stickiness"},
		{"stickiness negative", Options{Stickiness: -0.1}, "Stickiness"},
		{"negative first runs", Options{FirstRuns: -2}, "FirstRuns"},
		{"negative trial timeout", Options{TrialTimeout: -time.Second}, "TrialTimeout"},
		{"negative retries", Options{Retries: -3}, "Retries"},
		{"negative memory budget", Options{MemoryBudget: -1}, "MemoryBudget"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := CheckSource(racySource, c.opts); err == nil || !containsSub(err.Error(), c.want) {
				t.Errorf("CheckSource: want error mentioning %q, got %v", c.want, err)
			}
			if _, err := CheckUnitFromSource(t, c.opts); err == nil || !containsSub(err.Error(), c.want) {
				t.Errorf("CheckUnit: want error mentioning %q, got %v", c.want, err)
			}
			if _, err := RefineSource(racySource, c.opts); err == nil || !containsSub(err.Error(), c.want) {
				t.Errorf("RefineSource: want error mentioning %q, got %v", c.want, err)
			}
		})
	}
}

// CheckUnitFromSource parses racySource and checks the unit directly, so the
// validation test covers CheckUnit's path too.
func CheckUnitFromSource(t *testing.T, opts Options) (*Report, error) {
	t.Helper()
	unit, err := lang.ParseAndLower(racySource)
	if err != nil {
		t.Fatal(err)
	}
	return CheckUnit(unit, opts)
}

func TestValidationPreventsSchedulerPanic(t *testing.T) {
	// Before validation existed, this panicked inside vm.NewSticky.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("CheckSource panicked on bad Stickiness: %v", r)
		}
	}()
	if _, err := CheckSource(racySource, Options{Stickiness: 2}); err == nil {
		t.Fatal("Stickiness 2 accepted")
	}
}

func TestReportViolationSeedsReflectDefaults(t *testing.T) {
	// Sanity: the supervised pipeline preserves the original contract that
	// trial i runs seed Seed+i when nothing fails.
	r, err := CheckSource(racySource, Options{Trials: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Violations {
		if v.Seed < 10 || v.Seed > 13 {
			t.Fatalf("violation outside the seed range: %+v", v)
		}
	}
	if r.CompletedTrials != 4 {
		t.Fatalf("CompletedTrials = %d", r.CompletedTrials)
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
