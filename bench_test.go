// Package doublechecker's root benchmark harness: one testing.B benchmark
// per table and figure of the paper (see DESIGN.md's experiment index), plus
// component micro-benchmarks for the substrates. Each experiment benchmark
// runs the same driver code as `dcbench`, at reduced trial counts so
// `go test -bench=. -benchmem` completes in minutes; run dcbench directly
// for the full-size regeneration.
package doublechecker

import (
	"testing"

	"doublechecker/internal/core"
	"doublechecker/internal/cost"
	"doublechecker/internal/eval"
	"doublechecker/internal/octet"
	"doublechecker/internal/spec"
	"doublechecker/internal/vm"
	"doublechecker/internal/workloads"
)

// benchOpts keeps experiment benchmarks quick but representative.
func benchOpts(benchmarks ...string) eval.Options {
	return eval.Options{
		Scale:        0.3,
		PerfTrials:   3,
		StatTrials:   2,
		RefineStable: 3,
		FirstRuns:    5,
		Benchmarks:   benchmarks,
	}
}

// BenchmarkTable1OctetTransitions measures the Octet barrier costs that
// Table 1 classifies: the read-only fast path against the slow paths.
func BenchmarkTable1OctetTransitions(b *testing.B) {
	b.Run("fast-path", func(b *testing.B) {
		e := octet.New(nil, nil, nil)
		e.ThreadStart(0)
		e.BeforeWrite(0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.BeforeWrite(0, 1) // same state: fast path
		}
	})
	b.Run("conflicting", func(b *testing.B) {
		e := octet.New(nil, nil, nil)
		e.ThreadStart(0)
		e.ThreadStart(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.BeforeWrite(vm.ThreadID(i%2), 1) // ping-pong: conflict each time
		}
	})
	b.Run("rdsh-reads", func(b *testing.B) {
		e := octet.New(nil, nil, nil)
		for t := vm.ThreadID(0); t < 4; t++ {
			e.ThreadStart(t)
		}
		e.BeforeRead(0, 1)
		e.BeforeRead(1, 1) // -> RdSh
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.BeforeRead(vm.ThreadID(i%4), 1) // fence once per thread, then fast
		}
	})
}

// BenchmarkTable2Violations regenerates Table 2 (iterative refinement under
// three checkers) on a representative subset.
func BenchmarkTable2Violations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("hsqldb6", "tsp", "philo"))
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7's normalized-execution-time bars on
// a representative subset.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("hsqldb6", "tsp", "moldyn"))
		if _, err := r.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7PerConfig measures each checker configuration once per
// iteration on one benchmark, reporting the modelled slowdown as a custom
// metric — the per-bar view of Figure 7.
func BenchmarkFigure7PerConfig(b *testing.B) {
	built, err := workloads.Build("hsqldb6", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	sp := spec.Initial(built.Prog)
	if err := sp.ExcludeByName(built.InitialExclusions...); err != nil {
		b.Fatal(err)
	}
	for _, a := range []core.Analysis{
		core.Baseline, core.Velodrome, core.VelodromeUnsound,
		core.DCSingle, core.DCFirst,
	} {
		b.Run(a.String(), func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				base := cost.NewMeter(cost.Default())
				if _, err := core.Run(built.Prog, core.Config{
					Analysis: core.Baseline, Sched: vm.NewSticky(int64(i), built.Stickiness),
					Atomic: sp.Atomic, Meter: base,
				}); err != nil {
					b.Fatal(err)
				}
				meter := cost.NewMeter(cost.Default())
				if _, err := core.Run(built.Prog, core.Config{
					Analysis: a, Sched: vm.NewSticky(int64(i), built.Stickiness),
					Atomic: sp.Atomic, Meter: meter,
				}); err != nil {
					b.Fatal(err)
				}
				norm = meter.Report().Normalized(base.Total())
			}
			b.ReportMetric(norm, "slowdown-x")
		})
	}
}

// BenchmarkTable3Characteristics regenerates Table 3's run-time statistics.
func BenchmarkTable3Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("tsp", "jython9"))
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec54Refinement regenerates the refinement-stage overhead
// experiment.
func BenchmarkSec54Refinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("hsqldb6"))
		if _, err := r.RefinementStages(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec54Arrays regenerates the array-instrumentation experiment.
func BenchmarkSec54Arrays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("sor", "moldyn"))
		if _, err := r.Arrays(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec54PCDOnly regenerates the PCD-only straw-man experiment.
func BenchmarkSec54PCDOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("hsqldb6", "montecarlo"))
		if _, err := r.PCDOnly(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice ablation study (E11).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("tsp"))
		if _, err := r.Ablations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterPrecision runs the first-to-second-run communication
// precision sweep (E12, the paper's future-work suggestion).
func BenchmarkFilterPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchOpts("eclipse6"))
		if _, err := r.FilterPrecision(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks.

// BenchmarkVMInterpreter measures raw uninstrumented interpretation
// throughput (operations per iteration reported as allocations stay flat).
func BenchmarkVMInterpreter(b *testing.B) {
	built, err := workloads.Build("moldyn", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.NewExec(built.Prog, vm.Config{
			Sched: vm.NewSticky(int64(i), built.Stickiness),
		}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckers compares host-CPU cost of each checker over the same
// workload (distinct from the modelled cost the paper's figures use).
func BenchmarkCheckers(b *testing.B) {
	built, err := workloads.Build("hsqldb6", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	sp := spec.Initial(built.Prog)
	if err := sp.ExcludeByName(built.InitialExclusions...); err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"velodrome", func(c *core.Config) { c.Analysis = core.Velodrome }},
		{"velodrome-incremental", func(c *core.Config) {
			c.Analysis = core.Velodrome
			c.VelodromeIncremental = true
		}},
		{"dc-single", func(c *core.Config) { c.Analysis = core.DCSingle }},
		{"dc-first", func(c *core.Config) { c.Analysis = core.DCFirst }},
	}
	for _, cfgDesc := range configs {
		b.Run(cfgDesc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					Sched:  vm.NewSticky(int64(i), built.Stickiness),
					Atomic: sp.Atomic,
				}
				cfgDesc.mut(&cfg)
				if _, err := core.Run(built.Prog, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadBuild measures generator cost across the suite.
func BenchmarkWorkloadBuild(b *testing.B) {
	names := workloads.All()
	for i := 0; i < b.N; i++ {
		if _, err := workloads.Build(names[i%len(names)], 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiRunPipeline measures the full first-runs + second-run flow.
func BenchmarkMultiRunPipeline(b *testing.B) {
	built, err := workloads.Build("tsp", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	sp := spec.Initial(built.Prog)
	if err := sp.ExcludeByName(built.InitialExclusions...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.MultiRun(built.Prog, sp.Atomic, 5, int64(i*100), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity: the experiment benchmarks should also run as tests (cheaply) so
// `go test ./...` exercises them once.
func TestBenchHarnessSmoke(t *testing.T) {
	r := eval.NewRunner(benchOpts("philo", "tsp"))
	d, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2 {
		t.Fatalf("rows: %d", len(d.Rows))
	}
	for _, row := range d.Rows {
		if row.Name == "philo" && row.Single != 0 {
			t.Error("philo must be clean")
		}
	}
}
