module doublechecker

go 1.22
